"""The built-in rules (HL001-HL010) targeting this codebase's idioms.

Each rule encodes one of the correctness hazards the heterogeneous
substrate permits mechanically (see :mod:`repro.hamr.buffer`): the
linter's job is to make them visible before the sanitizer has to catch
them at run time.

Most rules are static heuristics over names and keywords — they
resolve ``Allocator``/``PMKind``/``StreamMode`` members against the
real enums but do not do type inference.  The *project rules*
(HL003, HL008, HL009, HL010) additionally opt into the engine's
:class:`~repro.analysis.dataflow.ProjectContext` and reason across
function and file boundaries through bounded data-flow summaries.
False positives are expected to be rare in this tree and are silenced
with ``# lint: disable=HLxxx`` plus a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule, Severity
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind

__all__ = [
    "RawDataAccessRule",
    "AllocatorMismatchRule",
    "UnsynchronizedStreamRule",
    "UnownedWrapRule",
    "ThreadOutsideRunnerRule",
    "SwallowedErrorRule",
    "PoolLeakRule",
    "PlacementChargeRule",
    "PoolEscapeRule",
    "NondeterministicDecisionRule",
    "ProjectRule",
    "DEFAULT_RULES",
    "default_rules",
    "rule_span",
]


# -- helpers ------------------------------------------------------------------

def _attr_name(node: ast.AST) -> str | None:
    """Trailing identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _enum_member(node: ast.AST, enum_name: str, enum_cls):
    """Resolve ``EnumName.MEMBER`` attribute nodes to the real member."""
    if (
        isinstance(node, ast.Attribute)
        and _attr_name(node.value) == enum_name
    ):
        return getattr(enum_cls, node.attr, None)
    return None


def _literal_device_id(node: ast.AST) -> int | None:
    """Literal device ordinals: ints, ``-1``, or ``HOST_DEVICE_ID``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return int(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -int(node.operand.value)
    if _attr_name(node) == "HOST_DEVICE_ID":
        return HOST_DEVICE_ID
    return None


def _keywords(call: ast.Call) -> dict[str, ast.expr]:
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


# -- HL001 --------------------------------------------------------------------

class RawDataAccessRule(Rule):
    """Raw ``Buffer.data`` / ``._data`` access outside the view layer.

    Storage tagged with a location must be dereferenced through the
    access APIs in :mod:`repro.hamr.view` (or the ``get_*_accessible``
    methods layered on them), which charge the right simulated costs
    and stage temporaries.  ``self.data`` / ``self._data`` are exempt
    (classes managing their own storage), as are the view and buffer
    modules that *define* the access path.
    """

    id = "HL001"
    severity = Severity.ERROR
    title = "raw buffer storage access outside the view layer"
    hint = (
        "route access through repro.hamr.view.accessible_view or the "
        "HAMRDataArray.get_*_accessible APIs; engine-layer code may "
        "suppress with '# lint: disable=HL001' and a justification"
    )

    #: Modules that define the sanctioned access path.
    allowed = ("repro/hamr/view.py", "repro/hamr/buffer.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(*self.allowed):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr not in ("data", "_data"):
                continue
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                continue
            yield self.finding(
                ctx,
                node,
                f"raw '.{node.attr}' access bypasses the location-aware "
                "view layer",
                details={"attribute": node.attr},
            )


# -- HL002 --------------------------------------------------------------------

class AllocatorMismatchRule(Rule):
    """Allocator paired with an incompatible location or PM.

    Flags calls whose literal keywords contradict the allocator's
    capabilities: a host-resident allocator targeting a device ordinal,
    a device allocator targeting ``HOST_DEVICE_ID``, or a
    device-resident allocator paired with the host-only PM.
    """

    id = "HL002"
    severity = Severity.ERROR
    title = "allocator/location/PM mismatch"
    hint = (
        "pick the allocator for where the memory must live: host "
        "allocators (MALLOC/NEW/*_HOST) pair with HOST_DEVICE_ID, "
        "device allocators with a device ordinal and a device PM"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kws = _keywords(node)
            alloc = _enum_member(kws.get("allocator"), "Allocator", Allocator)
            if alloc is None:
                continue
            details = {"allocator": alloc.name}
            dev = (
                _literal_device_id(kws["device_id"])
                if "device_id" in kws
                else None
            )
            if dev is not None:
                details["device_id"] = dev
                if alloc.is_host_resident and dev != HOST_DEVICE_ID:
                    yield self.finding(
                        ctx,
                        node,
                        f"host-resident allocator {alloc.name} cannot "
                        f"target device {dev}",
                        details=details,
                    )
                elif alloc.is_device_resident and dev < 0:
                    yield self.finding(
                        ctx,
                        node,
                        f"device allocator {alloc.name} cannot target "
                        "host memory",
                        details=details,
                    )
            pm = _enum_member(kws.get("pm"), "PMKind", PMKind)
            if pm is PMKind.HOST and alloc.is_device_resident:
                details["pm"] = pm.value
                yield self.finding(
                    ctx,
                    node,
                    f"device allocator {alloc.name} paired with the "
                    "host-only PM",
                    details=details,
                )


# -- project rules ------------------------------------------------------------

class ProjectRule(Rule):
    """Base for rules that reason across function and file boundaries.

    The engine hands these a shared
    :class:`~repro.analysis.dataflow.ProjectContext` (module index,
    call graph, data-flow summaries).  Used standalone — outside the
    engine — they degrade gracefully to a single-file project, keeping
    cross-function reasoning within the file.
    """

    uses_project = True

    def project_for(self, ctx: FileContext):
        if self.project is not None:
            return self.project
        from repro.analysis.dataflow import ProjectContext

        return ProjectContext.build([ctx])


# -- HL003 --------------------------------------------------------------------

class UnsynchronizedStreamRule(ProjectRule):
    """A stream created and used asynchronously but never synchronized.

    ``s = Stream(...)`` followed by asynchronous use (a call passing
    ``stream=s`` with ``mode=StreamMode.ASYNC`` / ``stream_mode=...``)
    is flagged unless the function also synchronizes *something*
    (``.synchronize()``/``.drain()``), returns the stream, or stores it
    on ``self`` — i.e. unless the completion is someone's
    responsibility.

    Interprocedural: the async use may happen inside a callee the
    stream is passed to, the stream may have been minted by a helper
    (``s = make_stream()``), and a callee that synchronizes the
    parameter discharges the obligation — all tracked through
    :class:`~repro.analysis.dataflow.StreamAnalysis` summaries with
    bounded call depth.
    """

    id = "HL003"
    severity = Severity.WARNING
    title = "asynchronous stream never synchronized"
    hint = (
        "call stream.synchronize(clock) (or synchronize the buffers "
        "ordered on it) before the results are consumed, or hand the "
        "stream to a caller that will"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        proj = self.project_for(ctx)
        seen: set[tuple[int, int, str]] = set()
        for fn, _fi in proj.iter_file_functions(ctx):
            scope = proj.scope(ctx, fn)
            facts = proj.streams.facts(fn, scope)
            if facts.any_sync:
                continue
            leaked = (
                (facts.async_used & set(facts.created))
                - facts.escaped
                - facts.synced
            )
            for name in sorted(leaked):
                node = facts.created[name]
                key = (node.lineno, node.col_offset, name)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    ctx,
                    node,
                    f"stream {name!r} orders asynchronous work but is "
                    "never synchronized in this function",
                    details={"stream": name, "stream_mode": "async"},
                )


# -- HL004 --------------------------------------------------------------------

class UnownedWrapRule(Rule):
    """Zero-copy construction without a lifetime owner.

    ``Buffer.wrap`` / ``*.zero_copy`` capture a pointer to externally
    allocated memory; without an ``owner`` (keep-alive) or ``deleter``
    (coordinated free) the wrapped storage can disappear while the
    buffer still references it — the classic zero-copy use-after-free.
    """

    id = "HL004"
    severity = Severity.WARNING
    title = "zero-copy wrap without lifetime owner"
    hint = (
        "pass owner= (keep-alive reference) or deleter= (called once "
        "on free) so the external memory outlives the buffer"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr == "wrap":
                recv = _attr_name(node.func.value)
                if recv is None or not recv.endswith("Buffer"):
                    continue
            elif attr != "zero_copy":
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs forwarding: cannot see statically
            kws = _keywords(node)
            if "owner" in kws or "deleter" in kws:
                continue
            yield self.finding(
                ctx,
                node,
                f"zero-copy '{attr}' without owner= or deleter=: the "
                "wrapped memory's lifetime is uncoordinated",
                details={"constructor": attr},
            )


# -- HL005 --------------------------------------------------------------------

class ThreadOutsideRunnerRule(Rule):
    """Direct ``threading.Thread`` use outside :class:`AsyncRunner`.

    Ad-hoc threads bypass the simulated-clock hand-off, back-pressure,
    and exception propagation that :class:`AsyncRunner` provides; a
    thread without its own :class:`SimClock` silently reads the
    launching thread's clock and corrupts simulated time.
    """

    id = "HL005"
    severity = Severity.ERROR
    title = "raw thread outside AsyncRunner"
    hint = (
        "use repro.sensei.execution.AsyncRunner (simulated clocks, "
        "drain semantics, error propagation) instead of a raw Thread"
    )

    #: The module that implements the sanctioned threading machinery.
    allowed = ("repro/sensei/execution.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(*self.allowed):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_thread = (
                isinstance(func, ast.Attribute)
                and func.attr == "Thread"
                and _attr_name(func.value) == "threading"
            ) or (isinstance(func, ast.Name) and func.id == "Thread")
            if is_thread:
                yield self.finding(
                    ctx,
                    node,
                    "direct threading.Thread use outside AsyncRunner",
                )


# -- HL006 --------------------------------------------------------------------

class SwallowedErrorRule(Rule):
    """Bare ``except:`` or a silently swallowed ``StreamError``.

    A bare except hides every substrate error (including sanitizer
    violations); catching ``StreamError``/``SynchronizationError`` and
    doing nothing discards exactly the signal the stream layer exists
    to raise.
    """

    id = "HL006"
    severity = Severity.ERROR
    title = "swallowed stream error / bare except"
    hint = (
        "catch the narrowest ReproError subclass you can handle and "
        "either handle it or re-raise; never pass on a StreamError"
    )

    _stream_errors = ("StreamError", "SynchronizationError")

    def _catches_stream_error(self, handler: ast.ExceptHandler) -> bool:
        t = handler.type
        nodes = t.elts if isinstance(t, ast.Tuple) else [t]
        return any(_attr_name(n) in self._stream_errors for n in nodes if n)

    @staticmethod
    def _body_swallows(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare 'except:' hides substrate errors"
                )
            elif self._catches_stream_error(node) and self._body_swallows(node):
                yield self.finding(
                    ctx,
                    node,
                    "StreamError caught and silently discarded",
                )


# -- HL007 --------------------------------------------------------------------

class PoolLeakRule(Rule):
    """A pool ``acquire`` without a ``release``/``trim`` in scope.

    Within one function: acquiring a block from a memory pool
    (``pool_for(res).acquire(...)`` or ``pool.acquire(...)`` on a name
    bound from ``pool_for``) without any ``release``/``trim`` call in
    the same function leaks the block's footprint — the bytes stay
    claimed on the device until someone trims.  The acquire is exempt
    when the pool escapes the function (returned, stored on ``self``),
    i.e. when releasing is visibly someone else's responsibility.
    """

    id = "HL007"
    severity = Severity.WARNING
    title = "pool acquire without release/trim in scope"
    hint = (
        "pair pool.acquire(nbytes) with pool.release(nbytes) (or a "
        "trim()) in the same scope, or hand the pool to an owner that "
        "frees it; allocation/free layers may suppress with "
        "'# lint: disable=HL007' and a justification"
    )

    #: The allocation/free layer splits acquire and release across
    #: functions by design (allocate vs free), and the pool module
    #: defines the machinery itself.
    allowed = ("repro/hamr/buffer.py", "repro/hamr/pool.py")

    @staticmethod
    def _is_pool_receiver(recv: ast.AST, pool_names: set[str]) -> bool:
        if isinstance(recv, ast.Call) and _attr_name(recv.func) == "pool_for":
            return True
        name = _attr_name(recv)
        return name is not None and name in pool_names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(*self.allowed):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            pool_names: set[str] = set()
            escaped: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    if _attr_name(node.value.func) == "pool_for":
                        for tgt in node.targets:
                            if isinstance(tgt, ast.Name):
                                pool_names.add(tgt.id)
                            elif isinstance(tgt, ast.Attribute):
                                escaped.add("")  # stored: escapes
                if isinstance(node, ast.Return) and node.value is not None:
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Attribute):
                            escaped.add(node.value.id)
            acquires: list[ast.Call] = []
            discharged = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                attr = node.func.attr
                recv = node.func.value
                if attr == "acquire" and self._is_pool_receiver(recv, pool_names):
                    acquires.append(node)
                elif attr in ("release", "trim"):
                    discharged = True
            if discharged:
                continue
            for call in acquires:
                recv_name = _attr_name(call.func.value)
                if recv_name in escaped:
                    continue
                yield self.finding(
                    ctx,
                    call,
                    "pool block acquired but never released or trimmed "
                    "in this scope",
                    details={"pool": recv_name or "pool_for(...)"},
                )


# -- HL008 --------------------------------------------------------------------

class PlacementChargeRule(ProjectRule):
    """Work charged to a device other than the resolved placement.

    The placement formula (Eq. 1) exists so every rank charges its in
    situ work to *its* assigned device.  A function that resolves the
    placement — ``placement.resolve(rank)``, ``resolve_device()``, or
    ``select_device(...)`` — and then passes a *hardcoded* device
    ordinal as ``device_id=`` to some call is charging work to a device
    the formula may have assigned to another rank: on a shared node
    that double-charges one device while the resolved one idles, and
    the accounting (utilization, contention) silently lies.

    Charging the host (``-1`` / ``HOST_DEVICE_ID``) is exempt — host
    staging next to a device-placed analysis is a legitimate pattern,
    and the host is not a placement-managed device.
    """

    id = "HL008"
    severity = Severity.WARNING
    title = "device charge bypasses the resolved placement"
    hint = (
        "pass the resolved device (the value of placement.resolve(rank) "
        "/ resolve_device() / select_device(...)) instead of a "
        "hardcoded ordinal; deliberate cross-device staging may "
        "suppress with '# lint: disable=HL008' and a justification"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        proj = self.project_for(ctx)
        seen: set[tuple[int, int, int]] = set()
        for fn, _fi in proj.iter_file_functions(ctx):
            scope = proj.scope(ctx, fn)
            facts = proj.charges.facts(fn, scope)
            resolved = facts.resolved_names
            if resolved:
                for call, dev in facts.literal_kw:
                    if dev < 0:
                        continue  # host staging (exempt)
                    key = (call.lineno, call.col_offset, dev)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        ctx,
                        call,
                        f"call charges device {dev} although this function "
                        f"resolved the placement into "
                        f"{'/'.join(sorted(resolved))}",
                        details={
                            "device_id": dev,
                            "resolved": ", ".join(sorted(resolved)),
                        },
                    )
            for call, dev, callee, callee_resolves in facts.literal_via_helper:
                if dev < 0:
                    continue  # host staging (exempt)
                if not (resolved or callee_resolves):
                    continue  # no placement in sight: manual choice
                key = (call.lineno, call.col_offset, dev)
                if key in seen:
                    continue
                seen.add(key)
                where = (
                    f"this function resolved the placement into "
                    f"{'/'.join(sorted(resolved))}"
                    if resolved
                    else f"'{callee}' resolves the placement itself"
                )
                yield self.finding(
                    ctx,
                    call,
                    f"literal device {dev} flows through '{callee}' into "
                    f"charged work although {where}",
                    details={
                        "device_id": dev,
                        "via": callee,
                        "resolved": ", ".join(sorted(resolved)),
                    },
                )


# -- HL009 --------------------------------------------------------------------

class PoolEscapeRule(ProjectRule):
    """A pool handle leaking across a function boundary.

    HL007 deliberately exempts an acquired pool that *escapes* its
    function — returned, stored, or handed to a callee — because
    releasing is then visibly someone else's responsibility.  This rule
    follows the escape: a ``pool_for``/``acquire`` result handed back
    by a helper must be released, trimmed, re-escaped, or passed to a
    releasing callee by the receiver; a handle discarded outright, or
    passed into a callee that provably never releases it while the
    local release discharged something *else*, leaks the block's
    footprint with no path to reclaim it.
    """

    id = "HL009"
    severity = Severity.WARNING
    title = "pool handle leaks across a function boundary"
    hint = (
        "release/trim the pool handle the helper returned, hand it to "
        "an owner that will, or keep the acquire/release pair in one "
        "scope; deliberate transfer may suppress with "
        "'# lint: disable=HL009' and a justification"
    )

    #: Same layers HL007 exempts: they split acquire/release by design.
    allowed = ("repro/hamr/buffer.py", "repro/hamr/pool.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module(*self.allowed):
            return
        proj = self.project_for(ctx)
        seen: set[tuple[int, int, str]] = set()

        def emit(node, message, **details):
            key = (node.lineno, node.col_offset, message)
            if key in seen:
                return None
            seen.add(key)
            return self.finding(ctx, node, message, details=details)

        for fn, _fi in proj.iter_file_functions(ctx):
            scope = proj.scope(ctx, fn)
            facts = proj.pools.facts(fn, scope)

            def kept_locally(name):
                return (
                    name in facts.released
                    or name in facts.returned
                    or name in facts.attr_stored
                )

            def discharged_by_pass(name):
                return any(
                    proj.pools.param_released_by(resolved, param)
                    for _call, resolved, param in facts.passes.get(name, ())
                )

            for name in sorted(facts.callee_pools):
                call, origin = facts.callee_pools[name]
                if kept_locally(name) or discharged_by_pass(name):
                    continue
                f = emit(
                    call,
                    f"pool handle acquired in '{origin}' is never "
                    "released or trimmed on any path from here",
                    pool=name,
                    origin=origin,
                )
                if f:
                    yield f
            for call, origin in facts.discarded:
                f = emit(
                    call,
                    f"acquired pool handle returned by '{origin}' is "
                    "discarded without release",
                    origin=origin,
                )
                if f:
                    yield f
            # A local acquire whose only escape is into a callee that
            # provably never releases it: HL007's same-scope discharge
            # (any release/trim present) hides exactly this case.
            if not facts.any_release:
                continue
            for name in sorted(set(facts.local_pools) & facts.acquired):
                if kept_locally(name):
                    continue
                passes = facts.passes.get(name, ())
                if not passes or discharged_by_pass(name):
                    continue
                call, resolved, _param = passes[0]
                f = emit(
                    call,
                    f"pool handle escapes into '{resolved.func.qualname}' "
                    "which never releases or trims it",
                    pool=name,
                    callee=resolved.func.qualname,
                )
                if f:
                    yield f


# -- HL010 --------------------------------------------------------------------

class NondeterministicDecisionRule(ProjectRule):
    """Nondeterminism feeding a governor :class:`Decision`.

    The control plane's contract (PRs 3-5) is bit-identical decisions
    across ranks and reruns.  This rule statically guards it: inside
    any function on a *decision path* — one that constructs a
    ``repro.control.governors.Decision`` or a
    ``repro.trace.format.TraceEvent`` (the trace recorder's record
    type: recorded traces must be byte-reproducible), directly feeds
    one (its callers), or computes values for one (their callees,
    bounded depth) — it flags:

    - wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
      ``datetime.now``/``utcnow``/``today``),
    - module-level ``random.*`` calls and unseeded ``random.Random()``
      (a seeded ``random.Random(seed)`` instance is the sanctioned
      source of randomness),
    - iteration over ``.keys()``/``.values()``/``.items()`` or
      ``set(...)`` in ``for`` loops and comprehensions without a
      ``sorted(...)`` wrapper — insertion order is rank-local, so
      dict-order dependence breaks cross-rank agreement.

    The simulated clock (``current_clock()``, ``clock.now``) and
    seeded RNG instances are allowlisted by construction: neither
    matches the patterns above.
    """

    id = "HL010"
    severity = Severity.WARNING
    title = "nondeterminism on a governor decision path"
    hint = (
        "use the simulated clock (current_clock().now), a seeded "
        "random.Random(seed), and sorted(...) iteration so decisions "
        "replay bit-identically across ranks and reruns; display-only "
        "uses may suppress with '# lint: disable=HL010' and a "
        "justification"
    )

    _wallclock = frozenset({
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        proj = self.project_for(ctx)
        if proj.index.module_for(ctx) is None:
            return
        seen: set[tuple[int, int, str]] = set()
        for fn, fi in proj.iter_file_functions(ctx):
            if fi is None:
                continue  # nested defs are scanned with their parent
            anchor = proj.decisions.anchor(fi)
            if anchor is None:
                continue
            scope = proj.scope(ctx, fn)
            for node, source in self._nondet_sites(fn, scope):
                key = (node.lineno, node.col_offset, source)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    ctx,
                    node,
                    f"{source} on the decision path through "
                    f"'{anchor.rsplit('.', 2)[-1]}' breaks bit-identical "
                    "replay",
                    details={"anchor": anchor, "source": source},
                )

    def _nondet_sites(self, fn, scope):
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                canon = scope.canonical(node.func)
                if canon in self._wallclock:
                    yield node, f"wall-clock read '{canon}'"
                elif canon == "random.Random":
                    if not (node.args or node.keywords):
                        yield node, "unseeded 'random.Random()'"
                elif canon is not None and canon.startswith("random."):
                    yield node, f"module-level RNG call '{canon}'"
            for it in self._iter_exprs(node):
                kind = self._unordered_iter(it)
                if kind is not None:
                    yield it, f"order-dependent iteration over {kind}"

    @staticmethod
    def _iter_exprs(node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter

    @staticmethod
    def _unordered_iter(it) -> str | None:
        if not isinstance(it, ast.Call):
            return None
        if isinstance(it.func, ast.Attribute) and it.func.attr in (
            "keys", "values", "items"
        ):
            return f"'.{it.func.attr}()'"
        if isinstance(it.func, ast.Name) and it.func.id == "set":
            return "'set(...)'"
        return None


DEFAULT_RULES: tuple[type[Rule], ...] = (
    RawDataAccessRule,
    AllocatorMismatchRule,
    UnsynchronizedStreamRule,
    UnownedWrapRule,
    ThreadOutsideRunnerRule,
    SwallowedErrorRule,
    PoolLeakRule,
    PlacementChargeRule,
    PoolEscapeRule,
    NondeterministicDecisionRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every built-in rule."""
    return [cls() for cls in DEFAULT_RULES]


def rule_span() -> str:
    """Human-readable id range of the built-in rules, e.g.
    ``HL001-HL010`` — derived so CLI help can never drift again."""
    ids = sorted(cls.id for cls in DEFAULT_RULES)
    return f"{ids[0]}-{ids[-1]}" if len(ids) > 1 else ids[0]
