"""Text, JSON, and SARIF reporters for lint findings and sanitizer
violations."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import Finding, Rule, Severity

__all__ = ["format_text", "format_json", "format_sarif", "summarize"]


def summarize(findings: Sequence[Finding]) -> dict:
    """Counts by severity plus the set of affected files."""
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity is Severity.WARNING)
    return {
        "findings": len(findings),
        "errors": errors,
        "warnings": warnings,
        "files": len({f.path for f in findings}),
    }


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per block."""
    if not findings:
        return "clean: no findings"
    lines: list[str] = []
    for f in findings:
        lines.append(str(f))
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    s = summarize(findings)
    lines.append(
        f"{s['findings']} finding(s) ({s['errors']} error(s), "
        f"{s['warnings']} warning(s)) in {s['files']} file(s)"
    )
    return "\n".join(lines)


def format_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (shared format with the sanitizer)."""
    findings = list(findings)
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "summary": summarize(findings),
        },
        indent=2,
        sort_keys=True,
    )


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}

#: Descriptions for findings the rule classes don't cover.
_SYNTHETIC_RULES = {
    "HL000": "file could not be read, decoded, or parsed",
    "HLS01": "suppression comment no longer suppresses anything",
    "HLS02": "suppression comment names an unknown rule id",
}


def _sarif_uri(path: str) -> str:
    p = Path(path)
    try:
        return p.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return p.as_posix()


def format_sarif(
    findings: Iterable[Finding],
    rules: Sequence[Rule] | None = None,
) -> str:
    """SARIF 2.1.0 report — rules, levels, physical locations — for
    ``github/codeql-action/upload-sarif`` inline PR annotation."""
    findings = list(findings)
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    descriptors: dict[str, dict] = {}
    for r in rules:
        descriptors[r.id] = {
            "id": r.id,
            "shortDescription": {"text": r.title or r.id},
            "help": {"text": r.hint or r.title or r.id},
            "defaultConfiguration": {"level": _SARIF_LEVEL[r.severity]},
        }
    for f in findings:
        if f.rule not in descriptors:
            text = _SYNTHETIC_RULES.get(f.rule, f.rule)
            descriptors[f.rule] = {
                "id": f.rule,
                "shortDescription": {"text": text},
                "help": {"text": f.hint or text},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[f.severity]
                },
            }
    results = [
        {
            "ruleId": f.rule,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _sarif_uri(f.path)},
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri":
                            "https://github.com/paper-repro/sensei-hetero",
                        "rules": [
                            descriptors[k] for k in sorted(descriptors)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
