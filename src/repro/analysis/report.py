"""Text and JSON reporters for lint findings and sanitizer violations."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.analysis.engine import Finding, Severity

__all__ = ["format_text", "format_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> dict:
    """Counts by severity plus the set of affected files."""
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity is Severity.WARNING)
    return {
        "findings": len(findings),
        "errors": errors,
        "warnings": warnings,
        "files": len({f.path for f in findings}),
    }


def format_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one finding per block."""
    if not findings:
        return "clean: no findings"
    lines: list[str] = []
    for f in findings:
        lines.append(str(f))
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    s = summarize(findings)
    lines.append(
        f"{s['findings']} finding(s) ({s['errors']} error(s), "
        f"{s['warnings']} warning(s)) in {s['files']} file(s)"
    )
    return "\n".join(lines)


def format_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report (shared format with the sanitizer)."""
    findings = list(findings)
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "summary": summarize(findings),
        },
        indent=2,
        sort_keys=True,
    )
