"""Location/stream safety tooling for the heterogeneous substrate.

The rest of the package *permits* the paper's correctness hazards
mechanically — dereferencing a buffer from the wrong side of the bus,
forgetting to synchronize an asynchronous stream, mutating data an
asynchronous in situ thread still reads.  This package makes those
hazards *detectable*:

- :mod:`repro.analysis.lint` — an AST-based static analyzer with a
  small rule engine (:mod:`repro.analysis.engine`) and rules targeting
  this codebase's idioms (:mod:`repro.analysis.rules`, HL001-HL007);
- :mod:`repro.analysis.sanitizer` — an opt-in runtime sanitizer that
  instruments :class:`~repro.hamr.buffer.Buffer` and
  :class:`~repro.sensei.execution.AsyncRunner` to catch cross-location
  reads, use-after-free of wrapped memory, and write-while-analyzing
  races in asynchronous execution.

Both are exposed on the command line::

    python -m repro lint src examples benchmarks
    python -m repro sanitize examples/quickstart.py

Findings, sanitizer violations, and the structured ``details`` dicts on
:class:`~repro.errors.StreamError` / :class:`~repro.errors.AllocationError`
share one report format (keys ``buffer``, ``device_id``, ``stream_mode``).
"""

from __future__ import annotations

from repro.analysis.engine import Finding, Rule, Severity
from repro.analysis.lint import lint_paths
from repro.analysis.rules import DEFAULT_RULES, default_rules
from repro.analysis.sanitizer import Sanitizer, Violation, note_write

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "lint_paths",
    "DEFAULT_RULES",
    "default_rules",
    "Sanitizer",
    "Violation",
    "note_write",
]
