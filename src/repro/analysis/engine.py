"""The rule engine behind ``python -m repro lint``.

A :class:`Rule` inspects one parsed source file and yields
:class:`Finding`\\ s.  The engine owns everything rules share: file
discovery, parsing, per-line ``# lint: disable=HLxxx`` suppressions,
and stable ordering of results.

The engine runs in **two passes**.  Pass one discovers and parses every
file (in parallel — parsing is embarrassingly independent — with the
results re-ordered so the outcome is deterministic).  Pass two
evaluates the rules.  Rules that set :attr:`Rule.uses_project` receive
a :class:`repro.analysis.dataflow.ProjectContext` on their
:attr:`Rule.project` attribute before pass two: a whole-tree module
index, call graph, and interprocedural data-flow summaries, letting
them reason across function and file boundaries.  Single-file rules
are unaffected.

Suppression syntax (same line as the finding)::

    values = buf.data          # lint: disable=HL001
    t = threading.Thread(...)  # lint: disable=HL005,HL001
    anything_at_all()          # lint: disable=all

Suppressions are recognized only in genuine comments (the source is
tokenized): the same text inside a string or docstring — e.g. a rule's
own hint text — neither suppresses anything nor counts as a
suppression for the ``--check-suppressions`` audit.

Findings carry the same structured ``details`` dict format used by
:class:`~repro.errors.ReproError` subclasses and the runtime sanitizer,
so static reports, runtime reports, and exceptions line up.
"""

from __future__ import annotations

import ast
import concurrent.futures
import dataclasses
import enum
import io
import os
import re
import threading
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "FileResult",
    "Rule",
    "iter_python_files",
    "parse_file",
    "parse_files",
    "lint_file",
    "run_rules",
    "run_rules_detailed",
]

#: Directories never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}


class Severity(enum.Enum):
    """How bad a finding is.  Any unsuppressed finding fails the run."""

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    details: tuple = ()  # sorted (key, value) pairs; dict via .details_dict

    @property
    def details_dict(self) -> dict:
        return dict(self.details)

    def to_dict(self) -> dict:
        """JSON-ready form (shared format with sanitizer violations)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "details": self.details_dict,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.severity.value}: {self.message}"


_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


def _comment_lines(source: str) -> dict[int, str] | None:
    """Line number -> comment text for every real comment, or None if
    the source cannot be tokenized (syntax too broken)."""
    out: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return None
    return out


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number (1-based) -> set of suppressed rule ids.

    Only genuine comments count; the tokenizer is consulted for any
    line the cheap regex matches, so ``disable=`` text embedded in a
    string literal is ignored.  If tokenization fails (the file will
    be reported as unparsable anyway) the regex result stands.
    """
    candidates: dict[int, str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if _SUPPRESS_RE.search(text):
            candidates[lineno] = text
    if not candidates:
        return {}
    comments = _comment_lines(source)
    out: dict[int, set[str]] = {}
    for lineno, text in sorted(candidates.items()):
        if comments is not None:
            text = comments.get(lineno, "")
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        ids = {part.strip().upper() for part in m.group(1).split(",")}
        ids = {i for i in ids if i}
        if ids:
            out[lineno] = ids
    return out


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, path: Path, source: str, tree: ast.AST):
        self.path = Path(path)
        #: Forward-slash form used for allowlist suffix matching.
        self.posix = self.path.resolve().as_posix()
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)

    def in_module(self, *suffixes: str) -> bool:
        """True if this file is one of the given path suffixes."""
        return any(self.posix.endswith(s) for s in suffixes)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppressions.get(line)
        if not ids:
            return False
        return "ALL" in ids or rule_id.upper() in ids


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`severity`, :attr:`title`, and
    :attr:`hint`, and implement :meth:`check` as a generator of
    findings (use :meth:`finding` to build them).

    A rule that needs cross-function/cross-file context sets
    :attr:`uses_project` to True; the engine then builds one
    :class:`~repro.analysis.dataflow.ProjectContext` over every linted
    file and assigns it to :attr:`project` before :meth:`check` runs.
    """

    id: str = "HL000"
    severity: Severity = Severity.ERROR
    title: str = ""
    hint: str = ""

    #: Opt-in flag: the engine hands project-aware rules a shared
    #: ProjectContext (module index + data-flow summaries).
    uses_project: bool = False
    #: Set by the engine before check() when uses_project is True.
    project = None  # type: object | None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        details: dict | None = None,
    ) -> Finding:
        items = tuple(sorted((details or {}).items()))
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=str(ctx.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
            details=items,
        )


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    seen: set[str] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file():
            if p.suffix == ".py" and str(p) not in seen:
                seen.add(str(p))
                yield p
            continue
        if not p.is_dir():
            continue
        for sub in sorted(p.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.endswith(".egg-info")
                   for part in sub.parts):
                continue
            if str(sub) in seen:
                continue
            seen.add(str(sub))
            yield sub


def _error_finding(path: Path, line: int, col: int, message: str,
                   kind: str) -> Finding:
    return Finding(
        rule="HL000",
        severity=Severity.ERROR,
        path=str(path),
        line=line,
        col=col,
        message=message,
        details=(("error", kind),),
    )


#: ast.parse is not thread-safe on CPython 3.11 (concurrent calls can
#: die with "SystemError: AST constructor recursion depth mismatch"),
#: and the GIL serializes the CPU-bound parse regardless — the worker
#: threads only overlap file I/O and tokenization.
_AST_PARSE_LOCK = threading.Lock()


def parse_file(path: Path | str) -> FileContext | Finding:
    """Parse one file; a structured HL000 finding instead of a crash
    when the file is not UTF-8 or not valid Python."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        return _error_finding(
            path, 0, 0,
            f"could not decode as UTF-8: {exc.reason} at byte {exc.start}",
            "decode",
        )
    except OSError as exc:
        return _error_finding(path, 0, 0, f"could not read: {exc}", "io")
    try:
        with _AST_PARSE_LOCK:
            tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return _error_finding(
            path, exc.lineno or 0, exc.offset or 0,
            f"could not parse: {exc.msg}", "syntax",
        )
    return FileContext(path, source, tree)


def _default_jobs() -> int:
    return max(1, min(8, os.cpu_count() or 1))


def parse_files(
    paths: Iterable[Path | str],
    jobs: int | None = None,
) -> tuple[list[FileContext], list[Finding]]:
    """Pass one: parse every file under ``paths`` in parallel.

    Returns ``(contexts, error_findings)``.  The thread pool only
    accelerates I/O and tokenization; results are re-assembled in
    discovery order so the outcome is bit-identical to a serial run.
    """
    files = list(iter_python_files(paths))
    jobs = jobs if jobs and jobs > 0 else _default_jobs()
    if len(files) <= 1 or jobs == 1:
        results = [parse_file(f) for f in files]
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(parse_file, files))
    contexts = [r for r in results if isinstance(r, FileContext)]
    errors = [r for r in results if isinstance(r, Finding)]
    return contexts, errors


@dataclasses.dataclass
class FileResult:
    """Per-file outcome of a lint run (pre- and post-suppression)."""

    ctx: FileContext
    findings: list[Finding]  # kept (suppressions applied)
    raw: list[Finding]       # every finding the rules produced


def _build_project(contexts: Sequence[FileContext]):
    from repro.analysis.dataflow import ProjectContext

    return ProjectContext.build(contexts)


def _check_contexts(
    contexts: Sequence[FileContext],
    rules: Sequence[Rule],
) -> list[FileResult]:
    project = None
    if any(r.uses_project for r in rules):
        project = _build_project(contexts)
    for rule in rules:
        if rule.uses_project:
            rule.project = project
    out: list[FileResult] = []
    for ctx in contexts:
        kept: list[Finding] = []
        raw: list[Finding] = []
        for rule in rules:
            for f in rule.check(ctx):
                raw.append(f)
                if not ctx.is_suppressed(f.line, f.rule):
                    kept.append(f)
        out.append(FileResult(ctx=ctx, findings=kept, raw=raw))
    return out


def lint_file(path: Path | str, rules: Iterable[Rule]) -> list[Finding]:
    """Run ``rules`` over one file, honoring suppressions.

    Project-aware rules see a single-file project: cross-function
    reasoning within the file still works, cross-file edges resolve to
    nothing.
    """
    parsed = parse_file(path)
    if isinstance(parsed, Finding):
        return [parsed]
    results = _check_contexts([parsed], list(rules))
    return results[0].findings


def run_rules_detailed(
    paths: Iterable[Path | str],
    rules: Iterable[Rule],
    jobs: int | None = None,
) -> tuple[list[FileResult], list[Finding]]:
    """Two-pass lint returning per-file raw/kept findings.

    Returns ``(file_results, parse_error_findings)``; used by the
    suppression audit, which needs to know what each suppression
    actually silenced.
    """
    rules = list(rules)
    contexts, errors = parse_files(paths, jobs=jobs)
    return _check_contexts(contexts, rules), errors


def run_rules(
    paths: Iterable[Path | str],
    rules: Iterable[Rule],
    jobs: int | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths``; stable ordering."""
    results, errors = run_rules_detailed(paths, rules, jobs=jobs)
    findings = list(errors)
    for r in results:
        findings.extend(r.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
