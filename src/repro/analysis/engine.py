"""The rule engine behind ``python -m repro lint``.

A :class:`Rule` inspects one parsed source file and yields
:class:`Finding`\\ s.  The engine owns everything rules share: file
discovery, parsing, per-line ``# lint: disable=HLxxx`` suppressions,
and stable ordering of results.

Suppression syntax (same line as the finding)::

    values = buf.data          # lint: disable=HL001
    t = threading.Thread(...)  # lint: disable=HL005,HL001
    anything_at_all()          # lint: disable=all

Findings carry the same structured ``details`` dict format used by
:class:`~repro.errors.ReproError` subclasses and the runtime sanitizer,
so static reports, runtime reports, and exceptions line up.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import re
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Severity",
    "Finding",
    "FileContext",
    "Rule",
    "iter_python_files",
    "lint_file",
    "run_rules",
]

#: Directories never descended into during file discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}


class Severity(enum.Enum):
    """How bad a finding is.  Any unsuppressed finding fails the run."""

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    details: tuple = ()  # sorted (key, value) pairs; dict via .details_dict

    @property
    def details_dict(self) -> dict:
        return dict(self.details)

    def to_dict(self) -> dict:
        """JSON-ready form (shared format with sanitizer violations)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "details": self.details_dict,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.severity.value}: {self.message}"


_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number (1-based) -> set of suppressed rule ids."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        ids = {part.strip().upper() for part in m.group(1).split(",")}
        out[lineno] = {i for i in ids if i}
    return out


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, path: Path, source: str, tree: ast.AST):
        self.path = Path(path)
        #: Forward-slash form used for allowlist suffix matching.
        self.posix = self.path.resolve().as_posix()
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)

    def in_module(self, *suffixes: str) -> bool:
        """True if this file is one of the given path suffixes."""
        return any(self.posix.endswith(s) for s in suffixes)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppressions.get(line)
        if not ids:
            return False
        return "ALL" in ids or rule_id.upper() in ids


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id`, :attr:`severity`, :attr:`title`, and
    :attr:`hint`, and implement :meth:`check` as a generator of
    findings (use :meth:`finding` to build them).
    """

    id: str = "HL000"
    severity: Severity = Severity.ERROR
    title: str = ""
    hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        details: dict | None = None,
    ) -> Finding:
        items = tuple(sorted((details or {}).items()))
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=str(ctx.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
            details=items,
        )


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for entry in paths:
        p = Path(entry)
        if p.is_file():
            if p.suffix == ".py":
                yield p
            continue
        if not p.is_dir():
            continue
        for sub in sorted(p.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.endswith(".egg-info")
                   for part in sub.parts):
                continue
            yield sub


def lint_file(path: Path | str, rules: Iterable[Rule]) -> list[Finding]:
    """Run ``rules`` over one file, honoring suppressions."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="HL000",
                severity=Severity.ERROR,
                path=str(path),
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"could not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path, source, tree)
    out: list[Finding] = []
    for rule in rules:
        for f in rule.check(ctx):
            if not ctx.is_suppressed(f.line, f.rule):
                out.append(f)
    return out


def run_rules(paths: Iterable[Path | str], rules: Iterable[Rule]) -> list[Finding]:
    """Lint every python file under ``paths``; stable ordering."""
    rules = list(rules)
    findings: list[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
