"""Entry point for the static analyzer: ``python -m repro lint``.

``lint_paths`` is the library surface (used by the CI test
``tests/test_lint_clean.py``); :func:`audit_suppressions` backs the
``--check-suppressions`` flag; :func:`main` is the CLI surface wired
into :mod:`repro.__main__`.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import (
    Finding,
    Rule,
    Severity,
    run_rules,
    run_rules_detailed,
)
from repro.analysis.report import format_json, format_sarif, format_text
from repro.analysis.rules import default_rules, rule_span

__all__ = ["lint_paths", "audit_suppressions", "main", "describe"]

#: Rule ids the suppression audit itself reports under.
UNUSED_SUPPRESSION = "HLS01"
UNKNOWN_SUPPRESSION = "HLS02"


def describe() -> str:
    """One-line CLI description; the rule range is derived from
    :func:`default_rules` so it can never drift again."""
    return (
        "static location/stream safety analyzer "
        f"(rules {rule_span()})"
    )


def _select_rules(
    rules: Sequence[Rule] | None, select: Iterable[str] | None
) -> list[Rule]:
    active = list(rules) if rules is not None else default_rules()
    if select is not None:
        wanted = {s.strip().upper() for s in select}
        known = {r.id for r in active}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        active = [r for r in active if r.id in wanted]
    return active


def _check_paths(paths: Iterable[Path | str]) -> list[Path | str]:
    paths = list(paths)
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        raise FileNotFoundError(f"no such path(s): {', '.join(missing)}")
    return paths


def lint_paths(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
    check_suppressions: bool = False,
    jobs: int | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` with the built-in rules.

    ``select`` restricts to the given rule ids (e.g. ``["HL001"]``);
    ``check_suppressions`` additionally audits ``# lint: disable=``
    comments (see :func:`audit_suppressions`).
    """
    active = _select_rules(rules, select)
    paths = _check_paths(paths)
    if not check_suppressions:
        return run_rules(paths, active, jobs=jobs)
    results, errors = run_rules_detailed(paths, active, jobs=jobs)
    findings = list(errors)
    for r in results:
        findings.extend(r.findings)
        findings.extend(_audit_file(r.ctx, r.raw, active))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _audit_file(ctx, raw: Sequence[Finding], rules: Sequence[Rule]) -> list[Finding]:
    """Findings for suppressions that no longer suppress anything."""
    known = {r.id for r in rules} | {"HL000"}
    by_line: dict[int, set[str]] = {}
    for f in raw:
        by_line.setdefault(f.line, set()).add(f.rule)
    out: list[Finding] = []
    for line in sorted(ctx.suppressions):
        ids = ctx.suppressions[line]
        unknown = sorted(i for i in ids if i != "ALL" and i not in known)
        for rule_id in unknown:
            out.append(
                Finding(
                    rule=UNKNOWN_SUPPRESSION,
                    severity=Severity.WARNING,
                    path=str(ctx.path),
                    line=line,
                    col=0,
                    message=f"suppression names unknown rule id "
                            f"{rule_id!r}",
                    hint="fix the id or delete the suppression",
                    details=(("suppressed", rule_id),),
                )
            )
        hits = by_line.get(line, set())
        used = bool(hits) if "ALL" in ids else bool(hits & ids)
        if not used and not unknown:
            listed = ", ".join(sorted(ids))
            out.append(
                Finding(
                    rule=UNUSED_SUPPRESSION,
                    severity=Severity.WARNING,
                    path=str(ctx.path),
                    line=line,
                    col=0,
                    message=f"suppression '{listed}' no longer "
                            "suppresses anything on this line",
                    hint="delete the stale '# lint: disable=' comment",
                    details=(("suppressed", listed),),
                )
            )
    return out


def audit_suppressions(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
    jobs: int | None = None,
) -> list[Finding]:
    """Audit ``# lint: disable=`` comments under ``paths``.

    Reports suppressions that silence nothing (:data:`HLS01`) and
    suppressions naming unknown rule ids (:data:`HLS02`).
    """
    active = _select_rules(rules, None)
    paths = _check_paths(paths)
    results, _errors = run_rules_detailed(paths, active, jobs=jobs)
    findings: list[Finding] = []
    for r in results:
        findings.extend(_audit_file(r.ctx, r.raw, active))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro lint", description=describe())
    add_lint_arguments(p)
    return p


def add_lint_arguments(p: argparse.ArgumentParser) -> None:
    """The lint CLI surface, shared with ``repro.__main__``."""
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--check-suppressions",
        action="store_true",
        help="also report '# lint: disable=' comments that no longer "
             "suppress anything (unused or unknown rule ids)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel parse workers (default: auto)",
    )


def render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        return format_json(findings)
    if fmt == "sarif":
        return format_sarif(findings)
    return format_text(findings)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; exit 0 on a clean tree, 1 otherwise."""
    args = build_parser().parse_args(argv)
    select = args.select.split(",") if args.select else None
    try:
        findings = lint_paths(
            args.paths,
            select=select,
            check_suppressions=args.check_suppressions,
            jobs=args.jobs,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}")
        return 2
    print(render(findings, args.format))
    return 1 if findings else 0
