"""Entry point for the static analyzer: ``python -m repro lint``.

``lint_paths`` is the library surface (used by the CI test
``tests/test_lint_clean.py``); :func:`main` is the CLI surface wired
into :mod:`repro.__main__`.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import Finding, Rule, run_rules
from repro.analysis.report import format_json, format_text
from repro.analysis.rules import default_rules

__all__ = ["lint_paths", "main"]


def lint_paths(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` with the built-in rules.

    ``select`` restricts to the given rule ids (e.g. ``["HL001"]``).
    """
    active = list(rules) if rules is not None else default_rules()
    if select is not None:
        wanted = {s.strip().upper() for s in select}
        known = {r.id for r in active}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        active = [r for r in active if r.id in wanted]
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        raise FileNotFoundError(f"no such path(s): {', '.join(missing)}")
    return run_rules(paths, active)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro lint",
        description="static location/stream safety analyzer (rules HL001-HL007)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    return p


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; exit 0 on a clean tree, 1 otherwise."""
    args = build_parser().parse_args(argv)
    select = args.select.split(",") if args.select else None
    try:
        findings = lint_paths(args.paths, select=select)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}")
        return 2
    if args.format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0
