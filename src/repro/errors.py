"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SanitizerError",
    "AllocationError",
    "DeviceOutOfMemoryError",
    "InvalidAllocatorError",
    "StreamError",
    "SynchronizationError",
    "LocationError",
    "InteropError",
    "UninitializedArrayError",
    "ShapeMismatchError",
    "MPIError",
    "RankMismatchError",
    "TransportError",
    "ConfigError",
    "PlacementError",
    "ExecutionError",
    "SolverError",
    "BinningError",
    "TraceError",
    "TraceFormatError",
    "TraceVersionError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`.

    ``details`` carries structured context about the failure — for
    memory/stream errors the offending buffer name, device id, and
    stream mode — in the same ``{key: value}`` format the static
    analyzer's findings and the runtime sanitizer's violation reports
    use (:mod:`repro.analysis`), so exceptions and reports line up.
    """

    def __init__(self, *args, details: dict | None = None):
        super().__init__(*args)
        self.details: dict = dict(details) if details else {}


class SanitizerError(ReproError):
    """The runtime sanitizer detected an illegal access pattern.

    Raised by :class:`repro.analysis.sanitizer.Sanitizer` in ``raise``
    mode; ``details`` names the buffer, device, stream mode, and the
    violation ``kind`` (cross-location-read, use-after-free,
    write-while-analyzing).
    """


class AllocationError(ReproError):
    """A memory allocation request could not be satisfied."""


class DeviceOutOfMemoryError(AllocationError):
    """A virtual device ran out of simulated memory capacity."""

    def __init__(self, device: object, requested: int, available: int):
        self.device = device
        self.requested = int(requested)
        self.available = int(available)
        super().__init__(
            f"device {device} out of memory: requested {requested} bytes, "
            f"{available} bytes available",
            details={
                "device_id": getattr(device, "device_id", str(device)),
                "requested": int(requested),
                "available": int(available),
            },
        )


class InvalidAllocatorError(AllocationError):
    """An allocator was used with an incompatible device or PM."""


class StreamError(ReproError):
    """Invalid use of a stream (wrong device, closed stream, ...)."""


class SynchronizationError(StreamError):
    """An operation observed data that was not yet synchronized."""


class LocationError(ReproError):
    """Data was not where an operation required it to be."""


class InteropError(ReproError):
    """Two programming models could not interoperate as requested."""


class UninitializedArrayError(ReproError):
    """A data array was used before it was initialized."""


class ShapeMismatchError(ReproError):
    """Array shapes/lengths incompatible for the requested operation."""


class MPIError(ReproError):
    """Failure in the simulated MPI layer."""


class RankMismatchError(MPIError):
    """A collective was invoked with inconsistent participation."""


class TransportError(MPIError):
    """Failure in the data-transport plane (:mod:`repro.transport`).

    Raised for wire-format violations (unknown codec, version or
    checksum mismatch on a complete set) and for delivery giving up
    (retry budget exhausted, drain timeout); ``details`` carries the
    peer, step, and sequence context.
    """


class ArrayError(ReproError):
    """Failure in the distributed-array plane (:mod:`repro.array`).

    Raised for invalid partitions (fewer blocks than ranks), global
    indices outside the array, non-unit-stride slices, and misuse of
    the SPMD collectives; ``details`` carries the rank/shape context.
    """


class ConfigError(ReproError):
    """Malformed or semantically invalid run-time XML configuration."""


class PlacementError(ReproError):
    """An in situ placement request could not be honored."""


class ExecutionError(ReproError):
    """Failure while executing an analysis back-end."""


class SolverError(ReproError):
    """Failure inside the Newton++ solver."""


class BinningError(ReproError):
    """Failure inside the data-binning analysis."""


class TraceError(ReproError):
    """Failure in the trace record/replay plane (:mod:`repro.trace`)."""


class TraceFormatError(TraceError):
    """A trace file is malformed (bad JSON, unknown kind, bad footer)."""


class TraceVersionError(TraceError):
    """A trace file carries an unsupported format version."""
