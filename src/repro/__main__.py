"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``table1`` — print the evaluation's run matrix (paper Table 1);
- ``study``  — replay all eight placement/execution cases at paper
  scale and print the Figure 2 / Figure 3 series plus the Section 4.4
  findings;
- ``run``    — execute one case through the real stack (Newton++ ->
  SENSEI -> data binning) on a single virtual node and print its
  timing decomposition;
- ``trace``  — like ``run``, additionally writing a Chrome-trace JSON
  of every resource timeline for Perfetto / chrome://tracing;
- ``lint``   — static location/stream safety analyzer from
  :mod:`repro.analysis` (the rule range is printed by
  ``python -m repro lint --help``), text, JSON, or SARIF reports;
- ``sanitize`` — execute an example script under the runtime
  sanitizer and report cross-location reads, use-after-free, and
  write-while-analyzing races.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.units import fmt_time


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="SENSEI heterogeneous-architecture extensions — "
        "reproduction driver",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 run matrix")

    study = sub.add_parser("study", help="paper-scale placement study (Figs 2-3)")
    study.add_argument("--steps", type=int, default=100,
                       help="iterations per run (default 100)")
    study.add_argument("--overhead-ms", type=float, default=5.0,
                       help="per-binning-op SENSEI overhead in ms (default 5)")

    for name, help_text in (
        ("run", "run one case through the real stack"),
        ("trace", "run one case and export a Chrome trace"),
    ):
        one = sub.add_parser(name, help=help_text)
        one.add_argument("--placement", default="same",
                         choices=["host", "same", "dedicated1", "dedicated2"])
        one.add_argument("--method", default="lockstep",
                         choices=["lockstep", "asynchronous"])
        one.add_argument("--bodies", type=int, default=1200)
        one.add_argument("--steps", type=int, default=3)
        if name == "trace":
            one.add_argument("--out", default="repro_trace.json")

    from repro.analysis.lint import add_lint_arguments, describe

    lint = sub.add_parser("lint", help=describe())
    add_lint_arguments(lint)

    sanitize = sub.add_parser(
        "sanitize", help="run an example under the runtime sanitizer"
    )
    sanitize.add_argument(
        "example",
        help="path to a python script, or the name of a file in examples/",
    )
    sanitize.add_argument(
        "--strict", action="store_true",
        help="raise SanitizerError at the first violation instead of "
             "recording and reporting",
    )
    return p


def _cmd_table1(args) -> int:
    from repro.harness.report import format_table1
    from repro.harness.spec import table1_matrix

    print(format_table1(table1_matrix()))
    return 0


def _cmd_study(args) -> int:
    from repro.harness.calibrate import PaperWorkload
    from repro.harness.report import format_fig2, format_fig3, verify_findings
    from repro.harness.runner import simulate
    from repro.harness.spec import table1_matrix
    from repro.units import ms

    w = dataclasses.replace(
        PaperWorkload(), steps=args.steps, insitu_op_overhead=ms(args.overhead_ms)
    )
    results = [simulate(s, w) for s in table1_matrix()]
    print(format_fig2(results))
    print(format_fig3(results))
    findings = verify_findings(results)
    for name, ok in findings.items():
        print(f"  [{'ok' if ok else 'VIOLATED'}] {name.replace('_', ' ')}")
    return 0 if all(findings.values()) else 1


_PLACEMENTS = {
    "host": "HOST",
    "same": "SAME_DEVICE",
    "dedicated1": "DEDICATED_1",
    "dedicated2": "DEDICATED_2",
}


def _run_one(args):
    from repro.harness.calibrate import SmallWorkload, scaled_node_spec
    from repro.harness.runner import execute_small
    from repro.harness.spec import InSituPlacement, RunSpec
    from repro.sensei.execution import ExecutionMethod

    spec = RunSpec(
        InSituPlacement[_PLACEMENTS[args.placement]],
        ExecutionMethod.parse(args.method),
        nodes=1,
    )
    w = SmallWorkload(n_bodies=args.bodies, steps=args.steps,
                      n_coordinate_systems=3, n_variables=3, bins=(32, 32))
    result = execute_small(spec, w, node_spec=scaled_node_spec())
    print(f"case: {spec.label}")
    print(f"  total run time      {fmt_time(result.total_time)}")
    print(f"  solver / iteration  {fmt_time(result.solver_per_iter)}")
    print(f"  in situ apparent    {fmt_time(result.insitu_apparent_per_iter)}")
    print(f"  in situ actual      {fmt_time(result.insitu_actual_per_iter)}")
    return result


def _cmd_run(args) -> int:
    _run_one(args)
    return 0


def _cmd_trace(args) -> int:
    from repro.hw.node import get_node
    from repro.hw.trace import write_chrome_trace

    _run_one(args)
    node = get_node()
    write_chrome_trace(args.out, [r.timeline for r in node.iter_resources()])
    print(f"wrote {args.out}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import lint_paths, render

    select = args.select.split(",") if args.select else None
    try:
        findings = lint_paths(
            args.paths,
            select=select,
            check_suppressions=args.check_suppressions,
            jobs=args.jobs,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: error: {exc}")
        return 2
    print(render(findings, args.format))
    return 1 if findings else 0


def _resolve_example(target: str):
    """A script path as given, or a name resolved against examples/."""
    from pathlib import Path

    import repro

    p = Path(target)
    if p.is_file():
        return p
    name = target if target.endswith(".py") else f"{target}.py"
    candidate = Path(repro.__file__).resolve().parents[2] / "examples" / name
    if candidate.is_file():
        return candidate
    raise SystemExit(
        f"repro sanitize: no such script: {target!r} "
        f"(looked for {p} and {candidate})"
    )


def _cmd_sanitize(args) -> int:
    import runpy

    from repro.analysis.sanitizer import Sanitizer

    path = _resolve_example(args.example)
    san = Sanitizer(mode="raise" if args.strict else "record")
    print(f"sanitizing {path} (mode={san.mode})")
    with san:
        runpy.run_path(str(path), run_name="__main__")
    print(san.format_report())
    return 1 if san.violations else 0


_COMMANDS = {
    "table1": _cmd_table1,
    "study": _cmd_study,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
