"""Reporting: regenerate the paper's table and figure series as text.

The benches print these; EXPERIMENTS.md records them.  Bar "figures"
are rendered as ASCII so the series are inspectable in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.harness.runner import RunResult
from repro.harness.spec import InSituPlacement, RunSpec
from repro.sensei.execution import ExecutionMethod
from repro.units import fmt_time

__all__ = ["format_table1", "format_fig2", "format_fig3", "verify_findings"]

_PLACEMENT_ORDER = [
    InSituPlacement.HOST,
    InSituPlacement.SAME_DEVICE,
    InSituPlacement.DEDICATED_1,
    InSituPlacement.DEDICATED_2,
]


def format_table1(specs: Iterable[RunSpec]) -> str:
    """Table 1: the run matrix with rank/GPU accounting."""
    lines = [
        "Table 1: runs made to investigate in situ placement",
        f"{'Nodes':>5} | {'In-Situ Method':<14} | {'Ranks/node':>10} | "
        f"{'Total':>5} | In-Situ Location",
        "-" * 72,
    ]
    for s in specs:
        method = "lock step" if s.method is ExecutionMethod.LOCKSTEP else "asynchr."
        lines.append(
            f"{s.nodes:>5} | {method:<14} | {s.ranks_per_node:>10} | "
            f"{s.total_ranks:>5} | {s.placement.value}"
        )
    return "\n".join(lines)


def _bar(value: float, scale: float, width: int = 40) -> str:
    n = 0 if scale <= 0 else int(round(width * value / scale))
    return "#" * max(0, min(width, n))


def _by_case(
    results: Iterable[RunResult],
) -> dict[tuple[InSituPlacement, ExecutionMethod], RunResult]:
    return {(r.spec.placement, r.spec.method): r for r in results}


def format_fig2(results: Iterable[RunResult]) -> str:
    """Figure 2: total run time, lockstep vs asynchronous per placement."""
    cases = _by_case(results)
    scale = max(r.total_time for r in cases.values())
    lines = ["Figure 2: total run time for each in situ placement", ""]
    for p in _PLACEMENT_ORDER:
        lines.append(f"{p.value}:")
        for m, tag in (
            (ExecutionMethod.LOCKSTEP, "lockstep "),
            (ExecutionMethod.ASYNCHRONOUS, "asynchr. "),
        ):
            r = cases.get((p, m))
            if r is None:
                continue
            lines.append(
                f"  {tag} {fmt_time(r.total_time):>12} |{_bar(r.total_time, scale)}"
            )
        lines.append("")
    return "\n".join(lines)


def format_fig3(results: Iterable[RunResult]) -> str:
    """Figure 3: average per-iteration solver + in situ time (stacked)."""
    cases = _by_case(results)
    scale = max(r.iter_time for r in cases.values())
    lines = [
        "Figure 3: average time per iteration (solver + apparent in situ)",
        "          's' = solver, 'i' = in situ (apparent)",
        "",
    ]
    for p in _PLACEMENT_ORDER:
        lines.append(f"{p.value}:")
        for m, tag in (
            (ExecutionMethod.LOCKSTEP, "lockstep "),
            (ExecutionMethod.ASYNCHRONOUS, "asynchr. "),
        ):
            r = cases.get((p, m))
            if r is None:
                continue
            width = 40
            s_len = int(round(width * r.solver_per_iter / scale)) if scale else 0
            i_len = int(round(width * r.insitu_apparent_per_iter / scale)) if scale else 0
            lines.append(
                f"  {tag} solver={fmt_time(r.solver_per_iter):>12} "
                f"insitu={fmt_time(r.insitu_apparent_per_iter):>12} "
                f"(actual {fmt_time(r.insitu_actual_per_iter):>12}) "
                f"|{'s' * s_len}{'i' * i_len}"
            )
        lines.append("")
    return "\n".join(lines)


def verify_findings(results: Iterable[RunResult]) -> dict[str, bool]:
    """Check the paper's five qualitative Section 4.4 findings.

    Returns a mapping of finding name to whether the given results
    preserve it; benches print and assert on this.
    """
    cases = _by_case(results)

    def total(p, m):
        return cases[(p, m)].total_time

    def solver(p, m):
        return cases[(p, m)].solver_per_iter

    L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS

    findings: dict[str, bool] = {}
    findings["async_reduces_total_time_in_all_placements"] = all(
        total(p, A) < total(p, L) for p in _PLACEMENT_ORDER
    )
    findings["async_apparent_insitu_is_small"] = all(
        cases[(p, A)].insitu_apparent_per_iter
        < 0.25 * cases[(p, L)].insitu_apparent_per_iter
        for p in _PLACEMENT_ORDER
    )
    findings["async_slows_solver_in_all_placements"] = all(
        solver(p, A) > solver(p, L) for p in _PLACEMENT_ORDER
    )
    findings["dedicated_placements_are_slower"] = all(
        total(InSituPlacement.DEDICATED_1, m) > total(InSituPlacement.HOST, m)
        and total(InSituPlacement.DEDICATED_2, m)
        > total(InSituPlacement.DEDICATED_1, m)
        for m in (L, A)
    )
    host_l = total(InSituPlacement.HOST, L)
    same_l = total(InSituPlacement.SAME_DEVICE, L)
    findings["host_and_same_device_nearly_tied"] = (
        abs(host_l - same_l) / max(host_l, same_l) < 0.10
    )
    return findings
