"""Workload descriptors and calibration knobs.

:class:`PaperWorkload` captures the evaluation's parameters from
Section 4.3: 24M bodies from the uniform random initial condition, 128
nodes / 512 GPUs, in situ at every iteration, the binning operator
applied to 10 variables over 9 coordinate systems (90 binning
operations), post hoc I/O and repartitioning disabled.

Calibration notes
-----------------
Hardware terms come from :mod:`repro.hw.spec` (A100 / EPYC / PCIe4 /
Slingshot-class figures).  Two knobs are reproduction-specific:

- ``insitu_op_overhead`` — fixed per-binning-operation cost covering
  SENSEI orchestration of a separate operator instance: data/metadata
  handling, kernel-launch trains, and the latency+skew of the small
  collectives each operation issues at 512 ranks.  Set to 5 ms, which
  places lockstep in situ at roughly 10-15% of a solver iteration —
  consistent with in situ being clearly visible in the paper's Figure 3
  stack while far from dominating.
- the contention factors — while the asynchronous analysis overlaps the
  solver, both sides' work on shared resources is dilated
  (:class:`repro.hw.contention.ContentionModel`).  The default factors
  express near-saturation sharing; they apply only during the overlap
  window, so the solver slowdown scales with the in situ duty cycle,
  matching the paper's "solver was slowed down across all placements,
  nonetheless total run time reduced" observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.contention import ContentionModel, SharedResource
from repro.hw.spec import NodeSpec
from repro.units import ms

__all__ = ["PaperWorkload", "SmallWorkload", "harness_contention", "overlap_resources"]


@dataclass(frozen=True)
class PaperWorkload:
    """The evaluation's workload (Section 4.3)."""

    n_bodies: int = 24_000_000
    steps: int = 100                  # reported per-iteration; totals scale with this
    n_coordinate_systems: int = 9
    n_variables: int = 10
    bins: tuple[int, int] = (256, 256)
    init_time: float = 10.0           # fixed startup (alloc + IC + wiring)
    finalize_time: float = 2.0
    insitu_op_overhead: float = ms(5.0)
    #: Device binning kernel: "atomic" (the paper's implementation) or
    #: one of the optimized Section 5 strategies ("privatized"/"sorted").
    binning_strategy: str = "atomic"
    node: NodeSpec = field(default_factory=NodeSpec)

    @property
    def binning_operations(self) -> int:
        """90 in the paper: 10 variables x 9 coordinate systems."""
        return self.n_coordinate_systems * self.n_variables

    @property
    def n_cells(self) -> int:
        out = 1
        for b in self.bins:
            out *= int(b)
        return out


@dataclass(frozen=True)
class SmallWorkload:
    """A laptop-scale workload for running the real stack end to end."""

    n_bodies: int = 400
    steps: int = 5
    n_coordinate_systems: int = 3
    n_variables: int = 4
    bins: tuple[int, int] = (16, 16)
    dt: float = 1e-3
    softening: float = 0.05
    seed: int = 1
    mass_range: tuple[float, float] = (0.01, 0.03)

    @property
    def binning_operations(self) -> int:
        return self.n_coordinate_systems * self.n_variables


def scaled_node_spec(
    compute_scale: float = 1e-4, link_scale: float = 1e-2, num_devices: int = 4
) -> NodeSpec:
    """A slowed-down node for small-scale runs of the real stack.

    At a few hundred bodies the real A100 cost model makes the solver's
    O(n^2) kernel vanish next to the analysis's fixed overheads — the
    opposite of the paper-scale balance.  Scaling compute/memory rates
    down (latencies untouched) restores a solver-dominated iteration at
    laptop size, so the asynchronous-overlap behaviour of the genuine
    stack can be observed in simulated time.
    """
    import dataclasses

    base = NodeSpec()
    dev = dataclasses.replace(
        base.device,
        fp64_flops=base.device.fp64_flops * compute_scale,
        mem_bandwidth=base.device.mem_bandwidth * compute_scale,
    )
    host = dataclasses.replace(
        base.host,
        fp64_flops_per_core=base.host.fp64_flops_per_core * compute_scale,
        mem_bandwidth=base.host.mem_bandwidth * compute_scale,
    )
    link = dataclasses.replace(
        base.link,
        h2d_bandwidth=base.link.h2d_bandwidth * link_scale,
        d2h_bandwidth=base.link.d2h_bandwidth * link_scale,
        d2d_bandwidth=base.link.d2d_bandwidth * link_scale,
    )
    return NodeSpec(host=host, device=dev, link=link, num_devices=num_devices)


def harness_contention() -> ContentionModel:
    """The contention model used for paper-scale simulation."""
    return ContentionModel()


def overlap_resources(insitu_on_host: bool, same_device: bool) -> list[SharedResource]:
    """Resources the solver and the async analysis share, by placement.

    - host placement: the analysis occupies host cores the MPI runtime
      and solver bookkeeping use, plus the host link (staging data off
      the simulation GPU);
    - same device: the analysis kernels share the simulation GPU's SMs
      and memory bandwidth;
    - dedicated device(s): only the host link (deep-copy and staging
      traffic) and a sliver of host cores are shared.
    """
    if insitu_on_host:
        return [SharedResource.HOST_CORES, SharedResource.HOST_LINK]
    if same_device:
        return [SharedResource.GPU_COMPUTE, SharedResource.GPU_MEMORY]
    return [SharedResource.HOST_LINK, SharedResource.HOST_CORES]
