"""Scaling studies over the placement model.

The paper fixes 128 nodes; a natural follow-on question — and the kind
of planning the harness exists for — is how the placement trade-offs
move with machine size and problem size.  Two standard studies:

- **strong scaling**: fixed total bodies, growing node count.  The
  solver's per-rank O(n_local * N) work shrinks per node while the
  collectives grow, so parallel efficiency decays and the in situ share
  of an iteration grows with it;
- **weak scaling**: bodies per rank fixed, growing node count.  Direct
  n-body is O(N^2), so per-rank work *grows* with the machine — weak
  scaling in the HPC sense applies to the binning analysis (constant
  local rows), which is the interesting side here.

Both produce series of :class:`~repro.harness.runner.RunResult` that
the report helpers can render.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.harness.calibrate import PaperWorkload
from repro.harness.runner import RunResult, simulate
from repro.harness.spec import InSituPlacement, RunSpec
from repro.sensei.execution import ExecutionMethod

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling", "parallel_efficiency"]


@dataclass(frozen=True)
class ScalingPoint:
    """One node count in a scaling series."""

    nodes: int
    result: RunResult

    @property
    def total_ranks(self) -> int:
        return self.result.spec.total_ranks

    @property
    def iter_time(self) -> float:
        return self.result.iter_time


def strong_scaling(
    placement: InSituPlacement,
    method: ExecutionMethod,
    node_counts: Sequence[int],
    workload: PaperWorkload | None = None,
) -> list[ScalingPoint]:
    """Fixed problem size across growing machines."""
    w = workload if workload is not None else PaperWorkload()
    points = []
    for nodes in node_counts:
        spec = RunSpec(placement, method, nodes=int(nodes))
        points.append(ScalingPoint(nodes=int(nodes), result=simulate(spec, w)))
    return points


def weak_scaling(
    placement: InSituPlacement,
    method: ExecutionMethod,
    node_counts: Sequence[int],
    bodies_per_rank: int = 46_875,
    workload: PaperWorkload | None = None,
) -> list[ScalingPoint]:
    """Fixed bodies per rank across growing machines."""
    base = workload if workload is not None else PaperWorkload()
    points = []
    for nodes in node_counts:
        spec = RunSpec(placement, method, nodes=int(nodes))
        w = dataclasses.replace(
            base, n_bodies=int(bodies_per_rank) * spec.total_ranks
        )
        points.append(ScalingPoint(nodes=int(nodes), result=simulate(spec, w)))
    return points


def parallel_efficiency(points: Sequence[ScalingPoint]) -> list[float]:
    """Strong-scaling efficiency relative to the smallest machine.

    ``eff_i = (t_0 * R_0) / (t_i * R_i)`` over per-iteration times —
    1.0 means perfect scaling.
    """
    if not points:
        return []
    t0, r0 = points[0].iter_time, points[0].total_ranks
    return [
        (t0 * r0) / (p.iter_time * p.total_ranks) for p in points
    ]
