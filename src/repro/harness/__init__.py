"""Experiment harness — regenerates the paper's Table 1 and Figures 1-3.

The evaluation asks: "given a fixed number of compute nodes, each with
multiple accelerators and CPU cores, what is the most effective way to
utilize the available resources for in situ processing?"  Eight cases
are studied: {lockstep, asynchronous} x {all on host, same device, one
dedicated device, two dedicated devices} (Table 1), on 128 Perlmutter
nodes / 512 A100s, with Newton++ at 24M bodies feeding 90 data-binning
operations per iteration.

Two complementary run modes:

- :func:`~repro.harness.runner.simulate` — replays a case at **paper
  scale** on the calibrated cost model (analytic composition of the
  same roofline/link/contention terms the substrate charges), yielding
  the Figure 2/3 series;
- :func:`~repro.harness.runner.execute_small` — actually runs the full
  Newton++ + SENSEI + binning stack at laptop scale on one virtual
  node, with real numerics and the substrate's simulated clocks; used
  by tests, examples, and the Figure 1 bench.
"""

from repro.harness.spec import InSituPlacement, RunSpec, table1_matrix
from repro.harness.calibrate import PaperWorkload, SmallWorkload, harness_contention
from repro.harness.runner import RunResult, execute_small, simulate
from repro.harness.report import (
    format_fig2,
    format_fig3,
    format_table1,
    verify_findings,
)
from repro.harness.scaling import (
    ScalingPoint,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "InSituPlacement",
    "RunSpec",
    "table1_matrix",
    "PaperWorkload",
    "SmallWorkload",
    "harness_contention",
    "RunResult",
    "simulate",
    "execute_small",
    "format_table1",
    "format_fig2",
    "format_fig3",
    "verify_findings",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
]
