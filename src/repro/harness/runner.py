"""Run execution: paper-scale simulation and small-scale real runs.

``simulate`` composes the same cost terms the substrate charges —
roofline kernels, link transfers, alpha-beta collectives, contention
dilation — into per-iteration and total times for one Table 1 case at
paper scale (24M bodies, 512 GPUs).

``execute_small`` runs the genuine stack (Newton++ -> SENSEI ->
data binning) on one virtual node at laptop scale and extracts the same
metrics from the simulated clocks; it is the integration-level witness
that the model's code paths are the real ones.

Asynchronous-overlap model used by ``simulate``
-----------------------------------------------
Let ``S`` be the undilated solver time per iteration and ``A`` the
undilated in situ busy time.  While the analysis overlaps the solver,
both sides' work on the shared resources dilates by the contention
factor ``f``.  The analysis window is then ``W = A * f``; during that
window the solver progresses at rate ``1/f``, losing ``W * (1 - 1/f)``:

    S_eff     = S + W * (1 - 1/f)
    apparent  = deep_copy + launch + max(0, W - S_eff)   (back-pressure)
    iteration = apparent + S_eff        (asynchronous)
    iteration = S + A                   (lockstep)

This reproduces both halves of the paper's Section 4.4 finding: the
solver is slower under asynchronous execution in every placement, yet
the total run time is lower because ``W*(1-1/f) + apparent < A``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.binning.cuda import binning_kernel_cost
from repro.binning.reduce import ReductionOp
from repro.binning.strategies import BinningStrategy, strategy_kernel_cost
from repro.harness.calibrate import (
    PaperWorkload,
    SmallWorkload,
    harness_contention,
    overlap_resources,
)
from repro.harness.spec import InSituPlacement, RunSpec
from repro.hw.contention import ContentionModel
from repro.hw.device import HostCPU, VirtualDevice
from repro.mpi.comm import CommCostModel, run_spmd
from repro.newton.forces import pair_flops
from repro.sensei.execution import ExecutionMethod
from repro.units import ms, us

__all__ = ["RunResult", "simulate", "execute_small"]

#: Thread-launch overhead for the asynchronous hand-off.
THREAD_LAUNCH = us(100.0)


@dataclass(frozen=True)
class RunResult:
    """Metrics for one run, in simulated seconds."""

    spec: RunSpec
    steps: int
    n_bodies: int
    total_time: float
    solver_per_iter: float
    insitu_apparent_per_iter: float
    insitu_actual_per_iter: float
    data_movement_per_iter: float
    mode: str  # "model" (paper scale) or "stack" (real small-scale run)

    @property
    def iter_time(self) -> float:
        """Average end-to-end time per iteration."""
        return self.solver_per_iter + self.insitu_apparent_per_iter

    @property
    def label(self) -> str:
        return self.spec.label


def simulate(
    spec: RunSpec,
    workload: PaperWorkload | None = None,
    contention: ContentionModel | None = None,
) -> RunResult:
    """Model one Table 1 case at paper scale."""
    from repro.hw.node import VirtualNode

    w = workload if workload is not None else PaperWorkload()
    model = contention if contention is not None else harness_contention()
    node = VirtualNode(w.node)
    gpu = VirtualDevice(0, w.node.device)
    host = HostCPU(w.node.host)
    comm = CommCostModel()

    ranks = spec.total_ranks
    n_local = w.n_bodies / ranks
    table_bytes = 7 * 8.0 * n_local  # x,y,z,vx,vy,vz,mass as float64

    # ---- solver per iteration -------------------------------------------------
    # One force evaluation per KDK step (end-of-step kick reuses it next
    # step), on the rank's dedicated simulation GPU.
    solver_flops = pair_flops(n_local, w.n_bodies)
    solver_bytes = 8.0 * (7 * n_local + 4 * w.n_bodies)
    t_solver_kernel = gpu.kernel_time(flops=solver_flops, bytes_moved=solver_bytes)
    # Direct n-body needs every source: allgather of (x, y, z, mass).
    t_solver_comm = comm.collective(int(32 * w.n_bodies), ranks)
    s_time = t_solver_kernel + t_solver_comm

    # ---- in situ per iteration (undilated busy time) ----------------------------
    on_host = spec.insitu_on_host
    same_device = spec.placement is InSituPlacement.SAME_DEVICE
    # Dedicated devices can be oversubscribed: 3 ranks share 1 in situ
    # GPU in the one-dedicated-device placement.
    if spec.insitu_gpus_per_node:
        congestion = spec.ranks_per_node / spec.insitu_gpus_per_node
    else:
        congestion = 1.0

    # Data staging to the analysis location, once per iteration:
    # zero-copy for the same-device lockstep case, D2H for host
    # placement, D2D over NVLink for dedicated devices.
    if same_device:
        movement = 0.0
    elif on_host:
        movement = node.transfer_time(int(table_bytes), 0, -1)
    else:
        movement = node.transfer_time(int(table_bytes), 0, 1)

    # The analysis side of the HOST placement shares the node's cores
    # among the node's ranks.
    host_cores = max(1, w.node.host.cores // spec.ranks_per_node)

    strategy = BinningStrategy.parse(w.binning_strategy)
    per_op_cost = strategy_kernel_cost(
        strategy, int(n_local), w.n_cells, ReductionOp.SUM
    )
    if on_host:
        # The CPU implementation is the scatter (atomic-free) reference
        # regardless of the device strategy.
        cpu_cost = binning_kernel_cost(int(n_local), ReductionOp.SUM)
        t_bin = host.kernel_time(
            flops=cpu_cost.flops,
            bytes_moved=cpu_cost.bytes_moved,
            atomic_fraction=cpu_cost.atomic_fraction,
            cores=host_cores,
        )
    else:
        t_bin = gpu.kernel_time(
            flops=per_op_cost.flops,
            bytes_moved=per_op_cost.bytes_moved,
            atomic_fraction=per_op_cost.atomic_fraction,
        ) * congestion

    # Each of the 90 operations merges its grid globally; each of the 9
    # operator instances additionally computes on-the-fly bounds (4
    # scalar allreduces) and a count-grid merge.
    t_grid_reduce = comm.collective(w.n_cells * 8, ranks)
    t_bounds = 4 * comm.collective(8, ranks)
    per_system = t_bounds + t_grid_reduce + w.n_variables * (
        w.insitu_op_overhead + t_bin + t_grid_reduce
    )
    a_time = movement + w.n_coordinate_systems * per_system

    # ---- composition ---------------------------------------------------------------
    if spec.method is ExecutionMethod.LOCKSTEP:
        solver_eff = s_time
        apparent = a_time
        actual = a_time
        iter_time = s_time + a_time
        tail = 0.0
    else:
        f = model.combined(overlap_resources(on_host, same_device))
        window = a_time * f
        solver_eff = s_time + window * (1.0 - 1.0 / f)
        deep_copy = (
            w.node.link.latency + 2.0 * table_bytes / w.node.device.mem_bandwidth
        )
        apparent = deep_copy + THREAD_LAUNCH + max(0.0, window - solver_eff)
        iter_time = apparent + solver_eff
        actual = window
        tail = window  # the final step's analysis drains after the loop

    total = w.init_time + w.steps * iter_time + tail + w.finalize_time
    return RunResult(
        spec=spec,
        steps=w.steps,
        n_bodies=w.n_bodies,
        total_time=total,
        solver_per_iter=solver_eff,
        insitu_apparent_per_iter=apparent,
        insitu_actual_per_iter=actual,
        data_movement_per_iter=movement,
        mode="model",
    )


# ---------------------------------------------------------------------------
# Small-scale execution of the real stack.
# ---------------------------------------------------------------------------

#: Coordinate systems used by the small runs, in paper order (spatial
#: planes first, then phase-space and velocity-space planes).
COORD_SYSTEMS = [
    ("x", "y"), ("x", "z"), ("y", "z"),
    ("x", "vx"), ("y", "vy"), ("z", "vz"),
    ("vx", "vy"), ("vx", "vz"), ("vy", "vz"),
]

#: Binned variables, as (column, reduction) pairs.
VARIABLES = [
    ("mass", ReductionOp.SUM),
    ("vx", ReductionOp.AVERAGE),
    ("vy", ReductionOp.MIN),
    ("vz", ReductionOp.MAX),
    ("mass", ReductionOp.AVERAGE),
    ("vx", ReductionOp.MIN),
    ("vy", ReductionOp.MAX),
    ("vz", ReductionOp.SUM),
    ("mass", ReductionOp.MIN),
    ("mass", ReductionOp.MAX),
]


def _rank_main(comm, spec: RunSpec, w: SmallWorkload):
    from repro.binning.axes import AxisSpec
    from repro.binning.operator import BinRequest
    from repro.hamr.runtime import current_clock
    from repro.newton.adaptor import NewtonDataAdaptor
    from repro.newton.solver import NewtonSolver, SolverConfig
    from repro.sensei.backends.binning import BinningAnalysis
    from repro.sensei.bridge import Bridge

    solver = NewtonSolver(
        SolverConfig(
            n_bodies=w.n_bodies,
            dt=w.dt,
            softening=w.softening,
            seed=w.seed,
            mass_range=w.mass_range,
        ),
        comm,
    )
    placement = spec.insitu_device_placement()
    analyses = []
    for a, b in COORD_SYSTEMS[: w.n_coordinate_systems]:
        requests = [
            BinRequest(op, var) for var, op in VARIABLES[: w.n_variables]
        ]
        analysis = BinningAnalysis(
            "bodies",
            [AxisSpec(a, w.bins[0]), AxisSpec(b, w.bins[1])],
            requests,
            name=f"binning[{a},{b}]",
        )
        analysis.set_placement(placement)
        analysis.set_execution_method(spec.method)
        analyses.append(analysis)

    bridge = Bridge()
    bridge.initialize(comm, analyses=analyses)
    adaptor = NewtonDataAdaptor(solver)
    solver.run(w.steps, bridge=bridge, adaptor=adaptor)
    bridge.finalize()
    comm.barrier()

    total = current_clock().now
    solver_per_iter = solver.mean_step_time
    apparent = bridge.total_apparent_time / max(1, w.steps)
    actual = bridge.total_actual_time / max(1, w.steps)
    sample = analyses[0].latest
    total_binned = (
        float(sample.cell_array_as_grid("count").sum()) if sample is not None else 0.0
    )
    return total, solver_per_iter, apparent, actual, total_binned


def execute_small(
    spec: RunSpec,
    workload: SmallWorkload | None = None,
    node_spec=None,
) -> RunResult:
    """Run the real stack for one case on a single virtual node.

    The node gets ``spec.gpus_per_node`` devices; ``spec.ranks_per_node``
    rank threads run Newton++ with the case's placement and execution
    method.  Metrics come from the substrate's simulated clocks.
    ``node_spec`` overrides the node's hardware (e.g.
    :func:`repro.harness.calibrate.scaled_node_spec` for runs whose
    simulated solver should dominate at laptop body counts).
    """
    from repro.hamr.stream import reset_default_streams
    from repro.hw.node import VirtualNode, set_node
    from repro.hw.spec import NodeSpec

    w = workload if workload is not None else SmallWorkload()
    base = node_spec if node_spec is not None else NodeSpec()
    # Fresh node and fresh default streams: stream timelines are global
    # and would otherwise carry the previous case's simulated time into
    # this one.
    set_node(VirtualNode(base.with_devices(spec.gpus_per_node)))
    reset_default_streams()
    outs = run_spmd(spec.ranks_per_node, _rank_main, spec, w)

    total = max(o[0] for o in outs)
    solver = sum(o[1] for o in outs) / len(outs)
    apparent = sum(o[2] for o in outs) / len(outs)
    actual = sum(o[3] for o in outs) / len(outs)
    binned = outs[0][4]
    if binned != w.n_bodies:
        raise AssertionError(
            f"sanity check failed: binned {binned} rows, expected {w.n_bodies}"
        )
    return RunResult(
        spec=spec,
        steps=w.steps,
        n_bodies=w.n_bodies,
        total_time=total,
        solver_per_iter=solver,
        insitu_apparent_per_iter=apparent,
        insitu_actual_per_iter=actual,
        data_movement_per_iter=0.0,
        mode="stack",
    )
