"""Run specifications: the Table 1 matrix.

| Num.  | In-Situ   | Ranks    |       | In-Situ             |
| Nodes | Method    | per node | Total | Location            |
| 128   | lock step | 4        | 512   | all on host         |
|       |           | 4        | 512   | on same device      |
|       |           | 3        | 384   | 1 dedicated device  |
|       |           | 2        | 256   | 2 dedicated devices |
|       | asynchr.  | 4        | 512   | all on host         |
|       |           | 4        | 512   | on same device      |
|       |           | 3        | 384   | 1 dedicated device  |
|       |           | 2        | 256   | 2 dedicated devices |

"For all four in situ placements each simulation rank is assigned a
specific GPU, there is always only 1 simulation rank per GPU."
(Section 4.3)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.sensei.execution import ExecutionMethod
from repro.sensei.placement import DevicePlacement

__all__ = ["InSituPlacement", "RunSpec", "table1_matrix"]


class InSituPlacement(enum.Enum):
    """The four in situ placements of Section 4.3."""

    HOST = "all on host"
    SAME_DEVICE = "on same device"
    DEDICATED_1 = "1 dedicated device"
    DEDICATED_2 = "2 dedicated devices"


@dataclass(frozen=True)
class RunSpec:
    """One run of the placement study."""

    placement: InSituPlacement
    method: ExecutionMethod
    nodes: int = 128
    gpus_per_node: int = 4

    def __post_init__(self):
        if self.nodes < 1 or self.gpus_per_node < 1:
            raise PlacementError("nodes and gpus_per_node must be >= 1")
        if (
            self.placement is InSituPlacement.DEDICATED_2
            and self.gpus_per_node % 2
        ):
            raise PlacementError(
                "two-dedicated-devices placement needs an even GPU count"
            )

    # -- Table 1 accounting ------------------------------------------------------
    @property
    def ranks_per_node(self) -> int:
        """One simulation rank per simulation GPU."""
        if self.placement is InSituPlacement.DEDICATED_1:
            return self.gpus_per_node - 1
        if self.placement is InSituPlacement.DEDICATED_2:
            return self.gpus_per_node // 2
        return self.gpus_per_node

    @property
    def total_ranks(self) -> int:
        return self.nodes * self.ranks_per_node

    @property
    def sim_gpus_per_node(self) -> int:
        """GPUs running the simulation."""
        return self.ranks_per_node

    @property
    def insitu_gpus_per_node(self) -> int:
        """GPUs reserved exclusively for in situ processing."""
        if self.placement is InSituPlacement.DEDICATED_1:
            return 1
        if self.placement is InSituPlacement.DEDICATED_2:
            return self.gpus_per_node // 2
        return 0

    @property
    def insitu_on_host(self) -> bool:
        return self.placement is InSituPlacement.HOST

    # -- SENSEI configuration -----------------------------------------------------
    def insitu_device_placement(self) -> DevicePlacement:
        """The paper's Eq. 1 parameters realizing this placement.

        - host: analysis on the CPU;
        - same device: d = r mod n_a — the rank's own simulation GPU;
        - 1 dedicated: every rank's analysis on the last GPU
          (n_u = 1, d_0 = n_a - 1);
        - 2 dedicated: rank paired with a reserved GPU in the upper half
          (n_u = ranks/node, d_0 = ranks/node).
        """
        if self.placement is InSituPlacement.HOST:
            return DevicePlacement.host()
        if self.placement is InSituPlacement.SAME_DEVICE:
            return DevicePlacement.auto()
        if self.placement is InSituPlacement.DEDICATED_1:
            return DevicePlacement.auto(n_use=1, offset=self.gpus_per_node - 1)
        # DEDICATED_2: ranks 0..k-1 drive sim GPUs 0..k-1, analysis GPUs k..2k-1.
        k = self.ranks_per_node
        return DevicePlacement.auto(n_use=k, offset=k)

    def sim_device_of(self, local_rank: int) -> int:
        """The simulation GPU of a node-local rank."""
        return local_rank % self.gpus_per_node

    @property
    def label(self) -> str:
        m = "lockstep" if self.method is ExecutionMethod.LOCKSTEP else "asynchronous"
        return f"{self.placement.value} / {m}"

    def __str__(self) -> str:
        return self.label


def table1_matrix(nodes: int = 128, gpus_per_node: int = 4) -> list[RunSpec]:
    """The eight runs of Table 1 (lockstep cases first, as printed)."""
    placements = [
        InSituPlacement.HOST,
        InSituPlacement.SAME_DEVICE,
        InSituPlacement.DEDICATED_1,
        InSituPlacement.DEDICATED_2,
    ]
    return [
        RunSpec(placement=p, method=m, nodes=nodes, gpus_per_node=gpus_per_node)
        for m in (ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS)
        for p in placements
    ]
