"""Binning axes: specification, bounds, and index computation.

"The low and high bounds of the mesh axes can be manually specified or
obtained on the fly by calculating the minimum and maximum of the
respective coordinate variables." (paper Section 4.2)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BinningError
from repro.mpi.comm import Communicator

__all__ = ["AxisSpec", "compute_bounds", "bin_index", "flat_bin_index"]


@dataclass(frozen=True)
class AxisSpec:
    """One coordinate axis of the binning mesh.

    ``low``/``high`` of ``None`` request on-the-fly bounds from the data
    (a global min/max across MPI ranks).
    """

    column: str
    n_bins: int
    low: float | None = None
    high: float | None = None

    def __post_init__(self):
        if self.n_bins < 1:
            raise BinningError(f"axis {self.column!r}: n_bins must be >= 1")
        if self.low is not None and self.high is not None and not self.high > self.low:
            raise BinningError(
                f"axis {self.column!r}: high ({self.high}) must exceed low ({self.low})"
            )

    @property
    def has_manual_bounds(self) -> bool:
        return self.low is not None and self.high is not None


def compute_bounds(
    axis: AxisSpec, values: np.ndarray, comm: Communicator | None = None
) -> tuple[float, float]:
    """Resolve an axis's ``(low, high)`` bounds.

    Manual bounds win.  Otherwise the data's min/max is used; with a
    communicator the extrema are global (allreduce), so every rank bins
    into an identical mesh.  Degenerate (constant) data gets a unit-wide
    interval so every value still lands in a valid bin.
    """
    if axis.has_manual_bounds:
        return float(axis.low), float(axis.high)
    values = np.asarray(values, dtype=np.float64)
    if values.size:
        lo, hi = float(np.min(values)), float(np.max(values))
    else:
        lo, hi = np.inf, -np.inf
    if comm is not None:
        lo = comm.allreduce(lo, op="min")
        hi = comm.allreduce(hi, op="max")
    if not np.isfinite(lo) or not np.isfinite(hi):
        raise BinningError(
            f"axis {axis.column!r}: cannot derive bounds from empty data "
            "on every rank; specify manual bounds"
        )
    if axis.low is not None:
        lo = float(axis.low)
    if axis.high is not None:
        hi = float(axis.high)
    if hi <= lo:
        # All values identical (or manual half-bound collapsed the
        # interval): widen symmetrically to a unit interval.
        lo, hi = lo - 0.5, lo + 0.5
    return lo, hi


def bin_index(values: np.ndarray, low: float, high: float, n_bins: int) -> np.ndarray:
    """Per-value bin ordinal along one axis, clipped into ``[0, n_bins)``.

    Values outside ``[low, high)`` land in the boundary bins, the
    convention the reference implementation uses so no realization is
    dropped.
    """
    values = np.asarray(values, dtype=np.float64)
    width = (high - low) / n_bins
    idx = np.floor((values - low) / width).astype(np.int64)
    return np.clip(idx, 0, n_bins - 1)


def flat_bin_index(
    coords: list[np.ndarray], bounds: list[tuple[float, float]], dims: list[int]
) -> np.ndarray:
    """Row-major flat bin index over all axes.

    ``coords[k]`` are the values of coordinate variable ``k``;
    ``bounds[k]`` its resolved interval; ``dims[k]`` its bin count.
    """
    if not (len(coords) == len(bounds) == len(dims)):
        raise BinningError(
            f"rank mismatch: {len(coords)} coords, {len(bounds)} bounds, "
            f"{len(dims)} dims"
        )
    if not coords:
        raise BinningError("at least one coordinate axis is required")
    n = coords[0].shape[0] if coords[0].ndim else coords[0].size
    flat = np.zeros(n, dtype=np.int64)
    for values, (lo, hi), nb in zip(coords, bounds, dims):
        if np.asarray(values).size != n:
            raise BinningError("coordinate columns must be equally long")
        flat = flat * nb + bin_index(values, lo, hi, nb)
    return flat
