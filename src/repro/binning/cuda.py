"""Device (CUDA/HIP) data-binning implementation on virtual GPUs.

Numerics are identical to the host path (they run through numpy on the
buffer storage); what differs is *where* the work is charged.  The
binning kernel's memory traffic is dominated by atomic read-modify-
write updates — every realization increments/updates a bin shared with
other GPU threads — so a large ``atomic_fraction`` is passed to the
roofline model.  This reproduces the paper's observation that "data
binning is not an ideal algorithm for GPUs".
"""

from __future__ import annotations

import numpy as np

from repro.binning.cpu import apply_binned_update
from repro.binning.reduce import ReductionOp
from repro.errors import BinningError
from repro.hamr.allocator import Allocator
from repro.hamr.buffer import Buffer
from repro.hamr.stream import Stream, StreamMode
from repro.hw.clock import SimClock, TimedEvent
from repro.pm.kernels import KernelCost, launch

__all__ = ["bin_device", "binning_kernel_cost"]

#: Fraction of the binning kernel's traffic that is atomic updates.
#: Derived from the access pattern: per realization we stream the index
#: (8 B) and value (8 B) and atomically update the bin (~16 B of RMW
#: traffic), so roughly half the bytes contend.
ATOMIC_TRAFFIC_FRACTION = 0.5


def binning_kernel_cost(n_rows: int, op: ReductionOp) -> KernelCost:
    """Roofline work descriptor for binning ``n_rows`` realizations."""
    n_rows = int(n_rows)
    reads = 8 * n_rows  # flat indices
    if op.needs_values:
        reads += 8 * n_rows
    rmw = 16 * n_rows  # atomic read-modify-write on the bins
    if op is ReductionOp.AVERAGE:
        rmw *= 2  # sum and count grids both updated
    total = reads + rmw
    return KernelCost(
        flops=4.0 * n_rows,
        bytes_moved=float(total),
        atomic_fraction=(rmw / total) if total else 0.0,
    )


def bin_device(
    flat_idx: Buffer,
    values: Buffer | None,
    op: ReductionOp,
    n_cells: int,
    device_id: int,
    stream: Stream | None = None,
    mode: StreamMode = StreamMode.SYNC,
    clock: SimClock | None = None,
    strategy=None,
) -> tuple[Buffer, TimedEvent]:
    """Bin one variable on a virtual device.

    ``flat_idx`` (int64) and ``values`` (float64, unless COUNT) must be
    accessible on ``device_id``.  Returns the raw accumulator grid as a
    device buffer plus the kernel's completion event; callers finalize
    after any cross-rank merge.

    ``strategy`` selects how races are resolved — the paper's atomic
    implementation by default, or one of the optimized strategies from
    :mod:`repro.binning.strategies` (its Section 5 future work).
    """
    from repro.binning.strategies import (
        BinningStrategy,
        apply_sorted_update,
        effective_strategy,
        strategy_kernel_cost,
    )

    if op.needs_values and values is None:
        raise BinningError(f"{op.value} reduction requires values")
    if strategy is None:
        strategy = BinningStrategy.ATOMIC
    strategy = effective_strategy(strategy, n_cells, op)
    n_acc = int(np.prod(op.accumulator_shape(n_cells)))
    acc = Buffer.allocate(
        n_acc,
        np.float64,
        allocator=Allocator.CUDA,
        device_id=device_id,
        stream=stream,
        stream_mode=mode,
        name=f"bins[{op.value}]",
    )
    shape = op.accumulator_shape(n_cells)
    # Device memset through the buffer API (charges the simulated
    # memset and keeps the raw storage behind the location tag).
    if op is ReductionOp.AVERAGE:
        acc.fill(0.0)
    else:
        acc.fill(float(op.identity))

    cost = strategy_kernel_cost(strategy, flat_idx.size, n_cells, op)
    reads = [flat_idx] + ([values] if values is not None else [])

    def kernel(*arrays: np.ndarray) -> None:
        idx = arrays[0].astype(np.int64, copy=False)
        if idx.size and (idx.min() < 0 or idx.max() >= n_cells):
            raise BinningError(
                f"flat index out of range [0, {n_cells}): "
                f"[{idx.min()}, {idx.max()}]"
            )
        vals = arrays[1] if op.needs_values else None
        out = arrays[-1].reshape(shape)
        if not idx.size:
            return
        if strategy is BinningStrategy.SORTED:
            apply_sorted_update(out, idx, vals, op)
        else:
            # ATOMIC and PRIVATIZED differ in cost, not in the scatter
            # result; privatization is a scheduling optimization.
            apply_binned_update(out, idx, vals, op, n_cells)

    ev = launch(
        kernel,
        reads=reads,
        writes=[acc],
        device_id=device_id,
        flops=cost.flops,
        bytes_moved=cost.bytes_moved,
        atomic_fraction=cost.atomic_fraction,
        stream=stream,
        mode=mode,
        clock=clock,
        name=f"binning[{op.value},{strategy.value}]",
    )
    return acc, ev
