"""In situ data binning (paper Section 4.2).

Given tabular data where columns represent variables and rows represent
co-occurring realizations, data binning selects a subset of the
variables as coordinate axes of a uniform Cartesian mesh and transforms
the data into that coordinate system: each realization lands in the
mesh cell (bin) its coordinate values select; a per-cell counter yields
a histogram, and additional reductions (summation, minimum, maximum,
average) bin the non-coordinate variables.

Two implementations are provided, as in the paper:

- :mod:`repro.binning.cpu` — runs on the host;
- :mod:`repro.binning.cuda` — runs on an assigned virtual device, with
  the GPU's atomic-update penalty charged (the races between GPU
  threads incrementing the same bin are what make binning "not an
  ideal algorithm for GPUs").

:class:`~repro.binning.operator.DataBinner` orchestrates either
implementation, handles on-the-fly bounds computation, and merges
per-rank partial results over MPI.
"""

from repro.binning.axes import AxisSpec, compute_bounds, flat_bin_index
from repro.binning.reduce import ReductionOp
from repro.binning.cpu import bin_cpu
from repro.binning.cuda import bin_device
from repro.binning.strategies import BinningStrategy
from repro.binning.operator import BinRequest, DataBinner

__all__ = [
    "AxisSpec",
    "compute_bounds",
    "flat_bin_index",
    "ReductionOp",
    "bin_cpu",
    "bin_device",
    "BinningStrategy",
    "BinRequest",
    "DataBinner",
]
