"""Reduction operations for data binning.

"The reduction operations we support are summation, minimum, maximum,
and average." (paper Section 4.2) — plus the implicit per-cell counter
(histogram).

Each op defines: the identity its accumulator grid starts from, the
element-wise combiner for merging partial grids across MPI ranks, and a
finalizer that turns accumulator state into the reported value (empty
min/max/average bins become NaN).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import BinningError

__all__ = ["ReductionOp"]


class ReductionOp(enum.Enum):
    """Per-bin reduction applied to a binned variable."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVERAGE = "average"

    @classmethod
    def parse(cls, text: str) -> "ReductionOp":
        """Parse the XML spelling of an op (case-insensitive, avg alias)."""
        key = str(text).strip().lower()
        if key in ("avg", "mean"):
            key = "average"
        for op in cls:
            if op.value == key:
                return op
        raise BinningError(
            f"unknown reduction {text!r}; supported: "
            f"{[op.value for op in cls]} (plus aliases 'avg', 'mean')"
        )

    @property
    def identity(self) -> float:
        """Initial accumulator value for one bin."""
        if self is ReductionOp.MIN:
            return np.inf
        if self is ReductionOp.MAX:
            return -np.inf
        return 0.0

    @property
    def needs_values(self) -> bool:
        """COUNT is coordinate-only; the others consume a binned variable."""
        return self is not ReductionOp.COUNT

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge two partial accumulator grids (MPI reduction step).

        AVERAGE accumulators are ``(sum, count)`` pairs stacked on the
        leading axis; both components add.
        """
        if self is ReductionOp.MIN:
            return np.minimum(a, b)
        if self is ReductionOp.MAX:
            return np.maximum(a, b)
        return a + b  # COUNT, SUM, and AVERAGE (componentwise)

    @property
    def mpi_op(self) -> str:
        """The communicator reduction merging partial grids."""
        if self is ReductionOp.MIN:
            return "min"
        if self is ReductionOp.MAX:
            return "max"
        return "sum"

    def accumulator_shape(self, n_cells: int) -> tuple[int, ...]:
        """Shape of the flat accumulator for ``n_cells`` bins."""
        if self is ReductionOp.AVERAGE:
            return (2, n_cells)  # [sum, count]
        return (n_cells,)

    def make_accumulator(self, n_cells: int) -> np.ndarray:
        acc = np.empty(self.accumulator_shape(n_cells), dtype=np.float64)
        if self is ReductionOp.AVERAGE:
            acc.fill(0.0)
        else:
            acc.fill(self.identity)
        return acc

    def finalize(self, acc: np.ndarray) -> np.ndarray:
        """Turn accumulator state into the reported per-bin values."""
        if self is ReductionOp.AVERAGE:
            sums, counts = acc[0], acc[1]
            with np.errstate(invalid="ignore", divide="ignore"):
                out = sums / counts
            out[counts == 0] = np.nan
            return out
        if self in (ReductionOp.MIN, ReductionOp.MAX):
            out = acc.astype(np.float64, copy=True)
            out[~np.isfinite(out)] = np.nan
            return out
        return acc.astype(np.float64, copy=True)

    def result_name(self, variable: str | None) -> str:
        """Cell-array name for the result (e.g. ``mass_sum``)."""
        if self is ReductionOp.COUNT:
            return "count"
        if variable is None:
            raise BinningError(f"{self.value} reduction requires a variable")
        return f"{variable}_{self.value}"
