"""Device binning strategies — the paper's planned optimization.

Section 5: "We will profile and optimize the data binning
implementation to achieve a speed up on the GPU relative to the CPU."
The baseline (the paper's implementation) resolves races between GPU
threads with global-memory atomics, which is why GPU binning showed no
win.  Two standard optimizations are implemented as alternative
strategies:

- ``PRIVATIZED`` — each thread block accumulates into a private copy of
  the bin grid in shared memory (cheap block-local atomics), then the
  partial grids are merged with a streaming pass.  Only possible while
  the grid fits in shared memory; larger grids fall back to ``SORTED``.
- ``SORTED`` — sort realizations by bin index (radix sort), then reduce
  each segment with a contiguous streaming pass (``reduceat``).  No
  atomics at all; cost is a few streaming passes over the data.

The numerics of every strategy are genuinely different algorithms (the
sorted path really sorts and segment-reduces); the tests assert exact
agreement with the atomic reference, and the ablation bench shows the
crossover where the GPU starts beating the CPU.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.binning.reduce import ReductionOp
from repro.errors import BinningError
from repro.pm.kernels import KernelCost
from repro.units import KiB

__all__ = ["BinningStrategy", "strategy_kernel_cost", "apply_sorted_update"]

#: Shared-memory budget available for a private bin grid (A100: 164 KiB
#: per SM; a real kernel keeps some for staging).
SHARED_MEM_BUDGET = 96 * KiB

#: Number of private grid copies that must be merged (one per resident
#: block; bounded by the number of SMs on the part).
PRIVATE_COPIES = 108


class BinningStrategy(enum.Enum):
    """How a device binning kernel resolves inter-thread races."""

    ATOMIC = "atomic"          # the paper's implementation
    PRIVATIZED = "privatized"  # shared-memory private grids + merge
    SORTED = "sorted"          # radix sort + segmented reduction

    @classmethod
    def parse(cls, text: str) -> "BinningStrategy":
        key = str(text).strip().lower()
        for s in cls:
            if s.value == key:
                return s
        raise BinningError(
            f"unknown binning strategy {text!r}; supported: "
            f"{[s.value for s in cls]}"
        )


def grid_fits_shared_memory(n_cells: int, op: ReductionOp) -> bool:
    """Whether a private per-block grid of ``n_cells`` bins fits."""
    slots = 2 if op is ReductionOp.AVERAGE else 1
    return n_cells * 8 * slots <= SHARED_MEM_BUDGET


def effective_strategy(
    strategy: BinningStrategy, n_cells: int, op: ReductionOp
) -> BinningStrategy:
    """Resolve PRIVATIZED's shared-memory constraint."""
    if strategy is BinningStrategy.PRIVATIZED and not grid_fits_shared_memory(
        n_cells, op
    ):
        return BinningStrategy.SORTED
    return strategy


def strategy_kernel_cost(
    strategy: BinningStrategy, n_rows: int, n_cells: int, op: ReductionOp
) -> KernelCost:
    """Roofline work descriptor of one device binning pass.

    - ATOMIC: stream indices (+values) in, atomic RMW on the bins —
      the memory term is dominated by contended atomics.
    - PRIVATIZED: same streaming reads, block-local atomics charged as
      compute, plus a streaming merge of the private copies.
    - SORTED: a radix sort (4 passes over 8-byte keys + payload) and
      one streaming segmented-reduction pass; no atomic traffic.
    """
    strategy = effective_strategy(strategy, n_cells, op)
    n_rows = int(n_rows)
    n_cells = int(n_cells)
    value_cols = 1 if op.needs_values else 0
    reads = 8.0 * n_rows * (1 + value_cols)
    acc_slots = 2 if op is ReductionOp.AVERAGE else 1

    if strategy is BinningStrategy.ATOMIC:
        rmw = 16.0 * n_rows * acc_slots
        total = reads + rmw
        return KernelCost(
            flops=4.0 * n_rows,
            bytes_moved=total,
            atomic_fraction=(rmw / total) if total else 0.0,
        )

    if strategy is BinningStrategy.PRIVATIZED:
        copies = min(PRIVATE_COPIES, max(1, n_rows // 1024))
        merge = 2.0 * 8.0 * n_cells * acc_slots * copies
        # Shared-memory atomics cost a handful of cycles; charge as flops.
        return KernelCost(
            flops=24.0 * n_rows,
            bytes_moved=reads + merge,
            atomic_fraction=0.0,
        )

    # SORTED: 4 radix passes moving key+payload, then one reduce pass.
    sort_bytes = 4.0 * 2.0 * 8.0 * n_rows * (1 + value_cols)
    reduce_bytes = 8.0 * n_rows * (1 + value_cols) + 8.0 * n_cells * acc_slots
    return KernelCost(
        flops=12.0 * n_rows,
        bytes_moved=sort_bytes + reduce_bytes,
        atomic_fraction=0.0,
    )


def apply_sorted_update(
    acc: np.ndarray,
    flat_idx: np.ndarray,
    values: np.ndarray | None,
    op: ReductionOp,
) -> None:
    """Sort + segmented-reduction accumulation (the SORTED numerics).

    This is a genuinely different algorithm from the scatter path:
    realizations are ordered by bin, each occupied bin becomes one
    contiguous segment, and ``ufunc.reduceat`` reduces the segments.
    """
    if flat_idx.size == 0:
        return
    order = np.argsort(flat_idx, kind="stable")
    idx_sorted = flat_idx[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(idx_sorted)) + 1))
    bins = idx_sorted[starts]
    counts = np.diff(np.concatenate((starts, [idx_sorted.size])))

    if op is ReductionOp.COUNT:
        acc[bins] += counts
        return
    if values is None:
        raise BinningError(f"{op.value} reduction requires values")
    vals_sorted = np.asarray(values, dtype=np.float64)[order]
    if op is ReductionOp.SUM:
        acc[bins] += np.add.reduceat(vals_sorted, starts)
    elif op is ReductionOp.MIN:
        acc[bins] = np.minimum(acc[bins], np.minimum.reduceat(vals_sorted, starts))
    elif op is ReductionOp.MAX:
        acc[bins] = np.maximum(acc[bins], np.maximum.reduceat(vals_sorted, starts))
    elif op is ReductionOp.AVERAGE:
        acc[0][bins] += np.add.reduceat(vals_sorted, starts)
        acc[1][bins] += counts
    else:  # pragma: no cover - enum is closed
        raise BinningError(f"unhandled reduction {op}")
