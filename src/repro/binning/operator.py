"""The data-binning operator: orchestration, MPI merge, mesh assembly.

A :class:`DataBinner` is configured with coordinate axes and a list of
``(variable, reduction)`` requests.  ``execute`` consumes a
:class:`~repro.svtk.table.TableData` (any mix of host- and
device-resident columns), runs either the CPU or the device
implementation, merges partial grids across MPI ranks, and returns a
:class:`~repro.svtk.mesh.UniformCartesianMesh` holding the finalized
cell arrays.

The paper's evaluation applies "the data binning operator ... to 10
variables over 9 coordinate systems for a total of 90 binning
operations", each coordinate system handled by a separate operator
instance orchestrated by SENSEI's XML configuration — see
:mod:`repro.sensei.backends.binning`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.binning.axes import AxisSpec, compute_bounds, flat_bin_index
from repro.binning.cpu import bin_cpu
from repro.binning.cuda import bin_device
from repro.binning.reduce import ReductionOp
from repro.errors import BinningError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.stream import Stream, StreamMode, default_stream
from repro.hamr.view import SharedView, accessible_view
from repro.mpi.comm import Communicator
from repro.pm.kernels import launch
from repro.svtk.data_array import DataArray
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.table import TableData

__all__ = ["BinRequest", "DataBinner"]


@dataclass(frozen=True)
class BinRequest:
    """One binned variable: reduce ``variable`` with ``op`` per bin.

    ``variable`` is ``None`` for the COUNT (histogram) request.
    """

    op: ReductionOp
    variable: str | None = None

    def __post_init__(self):
        if self.op.needs_values and self.variable is None:
            raise BinningError(f"{self.op.value} reduction requires a variable")
        if not self.op.needs_values and self.variable is not None:
            raise BinningError("count reduction takes no variable")

    @property
    def result_name(self) -> str:
        return self.op.result_name(self.variable)


class DataBinner:
    """Bins tabular data onto a uniform Cartesian mesh.

    Parameters
    ----------
    axes:
        Coordinate axes (1-D or more); e.g. the paper's Figure 1 middle
        panel uses ``[AxisSpec('x', 256), AxisSpec('y', 256)]``.
    requests:
        Variables/reductions to bin.  A COUNT request is added
        automatically if absent (the histogram is always produced).
    """

    def __init__(
        self,
        axes: Sequence[AxisSpec],
        requests: Sequence[BinRequest] = (),
        name: str = "binning",
        device_strategy=None,
    ):
        from repro.binning.strategies import BinningStrategy

        if not axes:
            raise BinningError("at least one axis is required")
        self.axes = tuple(axes)
        reqs = list(requests)
        if not any(r.op is ReductionOp.COUNT for r in reqs):
            reqs.insert(0, BinRequest(ReductionOp.COUNT))
        names = [r.result_name for r in reqs]
        if len(set(names)) != len(names):
            raise BinningError(f"duplicate binning requests: {names}")
        self.requests = tuple(reqs)
        self.name = str(name)
        if device_strategy is None:
            device_strategy = BinningStrategy.ATOMIC
        elif isinstance(device_strategy, str):
            device_strategy = BinningStrategy.parse(device_strategy)
        #: How device kernels resolve races (the paper's atomic baseline
        #: or one of the Section 5 optimized strategies).
        self.device_strategy = device_strategy

    # -- column staging ------------------------------------------------------------
    @staticmethod
    def _column_values(col: DataArray) -> np.ndarray:
        """Host values of a column (view released after the copy)."""
        view = col.get_host_accessible()
        col.synchronize()
        values = np.array(view.get(), dtype=np.float64, copy=True)
        view.release()
        return values

    @staticmethod
    def _device_view(col: DataArray, device_id: int,
                     stream: Stream | None, mode: StreamMode) -> SharedView:
        """A device-accessible view of a column of any array subclass."""
        if isinstance(col, HAMRDataArray):
            return col.get_accessible(PMKind.CUDA, device_id, stream, mode)
        # Host-only arrays (stock VTK baseline): wrap, then move.
        values = np.asarray(col.as_numpy_host(), dtype=np.float64)
        host = Buffer.wrap(
            values,
            Allocator.MALLOC,
            name=col.name,
            owner=values,
        )
        return accessible_view(host, PMKind.CUDA, device_id, stream=stream, mode=mode)

    # -- execution --------------------------------------------------------------------
    def execute(
        self,
        table: TableData,
        comm: Communicator | None = None,
        device_id: int = HOST_DEVICE_ID,
        stream: Stream | None = None,
        mode: StreamMode = StreamMode.SYNC,
        cores: int | None = None,
    ) -> UniformCartesianMesh:
        """Run the binning and return the result mesh.

        ``device_id`` selects where the binning kernels execute
        (``HOST_DEVICE_ID`` = CPU implementation).  With a communicator,
        bounds and grids are globally consistent and merged; every rank
        returns the full result.
        """
        for ax in self.axes:
            if ax.column not in table:
                raise BinningError(
                    f"axis column {ax.column!r} not in table "
                    f"(columns: {list(table.column_names)})"
                )
        for req in self.requests:
            if req.variable is not None and req.variable not in table:
                raise BinningError(
                    f"binned variable {req.variable!r} not in table "
                    f"(columns: {list(table.column_names)})"
                )

        coords = [self._column_values(table.column(ax.column)) for ax in self.axes]
        bounds = [
            compute_bounds(ax, vals, comm) for ax, vals in zip(self.axes, coords)
        ]
        dims = [ax.n_bins for ax in self.axes]
        n_cells = int(np.prod(dims))

        if device_id == HOST_DEVICE_ID:
            grids = self._execute_host(table, coords, bounds, dims, n_cells, cores)
        else:
            grids = self._execute_device(
                table, bounds, dims, n_cells, device_id, stream, mode
            )

        # Merge partial grids across ranks, then finalize.
        mesh = UniformCartesianMesh(
            dims,
            origin=[lo for lo, _ in bounds],
            spacing=[(hi - lo) / nb for (lo, hi), nb in zip(bounds, dims)],
            name=self.name,
        )
        for req, acc in zip(self.requests, grids):
            if comm is not None:
                acc = comm.Allreduce(acc, op=req.op.mpi_op)
            mesh.add_host_cell_array(req.result_name, req.op.finalize(acc))
        return mesh

    def _execute_host(
        self,
        table: TableData,
        coords: list[np.ndarray],
        bounds: list[tuple[float, float]],
        dims: list[int],
        n_cells: int,
        cores: int | None,
    ) -> list[np.ndarray]:
        """CPU path: index once, then one pass per request."""
        from repro.binning.cuda import binning_kernel_cost
        from repro.hw.node import get_node

        flat = flat_bin_index(coords, bounds, dims)
        grids = []
        # Charge the host roofline for the work (numerics below are real).
        host = get_node().host
        from repro.hamr.runtime import current_clock

        clock = current_clock()
        for req in self.requests:
            values = (
                self._column_values(table.column(req.variable))
                if req.variable is not None
                else None
            )
            cost = binning_kernel_cost(flat.size, req.op)
            clock.advance(
                host.kernel_time(
                    flops=cost.flops,
                    bytes_moved=cost.bytes_moved,
                    atomic_fraction=cost.atomic_fraction,
                    cores=cores,
                )
            )
            grids.append(bin_cpu(flat, values, req.op, n_cells))
        return grids

    def _execute_device(
        self,
        table: TableData,
        bounds: list[tuple[float, float]],
        dims: list[int],
        n_cells: int,
        device_id: int,
        stream: Stream | None,
        mode: StreamMode,
    ) -> list[np.ndarray]:
        """Device path: stage columns, index kernel, binning kernels."""
        if stream is None:
            stream = default_stream(device_id)
        coord_views = [
            self._device_view(table.column(ax.column), device_id, stream, mode)
            for ax in self.axes
        ]
        n_rows = table.n_rows
        idx = Buffer.allocate(
            n_rows, np.int64, Allocator.CUDA, device_id=device_id,
            stream=stream, stream_mode=mode, name="flat-bin-idx",
        )

        def index_kernel(*arrays: np.ndarray) -> None:
            cs = [np.asarray(a, dtype=np.float64) for a in arrays[:-1]]
            arrays[-1][:] = flat_bin_index(cs, bounds, dims)

        launch(
            index_kernel,
            reads=[v.buffer for v in coord_views],
            writes=[idx],
            device_id=device_id,
            flops=6.0 * n_rows * len(self.axes),
            bytes_moved=8.0 * n_rows * (len(self.axes) + 1),
            stream=stream,
            mode=mode,
            name="binning-index",
        )

        grids = []
        for req in self.requests:
            val_view = None
            val_buf = None
            if req.variable is not None:
                val_view = self._device_view(
                    table.column(req.variable), device_id, stream, mode
                )
                val_buf = val_view.buffer
            acc, _ev = bin_device(
                idx, val_buf, req.op, n_cells, device_id, stream=stream,
                mode=mode, strategy=self.device_strategy,
            )
            acc.synchronize()
            # Read the device accumulator back through the access API:
            # the host is the wrong side of the bus here, so this stages
            # a temporary and charges the D2H transfer the raw `.data`
            # read used to get for free.
            with accessible_view(acc, PMKind.HOST, HOST_DEVICE_ID,
                                 stream=stream, mode=mode) as acc_view:
                acc_view.synchronize()
                grids.append(
                    np.array(acc_view.get(), copy=True)
                    .reshape(req.op.accumulator_shape(n_cells))
                )
            acc.free()
            if val_view is not None:
                val_view.release()
        for v in coord_views:
            v.release()
        idx.free()
        return grids
