"""Host (CPU) data-binning implementation.

Vectorized numpy scatter-reductions: ``np.bincount`` for count/sum
(fast paths) and ``np.minimum.at`` / ``np.maximum.at`` for the
order-statistic ops.  This is the reference implementation the device
variant is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.binning.reduce import ReductionOp
from repro.errors import BinningError

__all__ = ["bin_cpu", "apply_binned_update"]


def apply_binned_update(
    acc: np.ndarray,
    flat_idx: np.ndarray,
    values: np.ndarray | None,
    op: ReductionOp,
    n_cells: int,
) -> None:
    """Accumulate one batch of realizations into ``acc`` in place.

    ``acc`` has the op's accumulator shape; ``flat_idx`` maps each
    realization to its bin; ``values`` is the binned variable (``None``
    for COUNT).
    """
    if op.needs_values:
        if values is None:
            raise BinningError(f"{op.value} reduction requires values")
        values = np.asarray(values, dtype=np.float64)
        if values.size != flat_idx.size:
            raise BinningError(
                f"values length {values.size} != index length {flat_idx.size}"
            )

    if op is ReductionOp.COUNT:
        acc += np.bincount(flat_idx, minlength=n_cells)
    elif op is ReductionOp.SUM:
        acc += np.bincount(flat_idx, weights=values, minlength=n_cells)
    elif op is ReductionOp.AVERAGE:
        acc[0] += np.bincount(flat_idx, weights=values, minlength=n_cells)
        acc[1] += np.bincount(flat_idx, minlength=n_cells)
    elif op is ReductionOp.MIN:
        np.minimum.at(acc, flat_idx, values)
    elif op is ReductionOp.MAX:
        np.maximum.at(acc, flat_idx, values)
    else:  # pragma: no cover - enum is closed
        raise BinningError(f"unhandled reduction {op}")


def bin_cpu(
    flat_idx: np.ndarray,
    values: np.ndarray | None,
    op: ReductionOp,
    n_cells: int,
) -> np.ndarray:
    """Bin one variable on the host; returns the raw accumulator grid.

    The caller finalizes (``op.finalize``) after any cross-rank merge.
    """
    flat_idx = np.asarray(flat_idx, dtype=np.int64)
    if flat_idx.size and (flat_idx.min() < 0 or flat_idx.max() >= n_cells):
        raise BinningError(
            f"flat index out of range [0, {n_cells}): "
            f"[{flat_idx.min()}, {flat_idx.max()}]"
        )
    acc = op.make_accumulator(n_cells)
    if flat_idx.size:
        apply_binned_update(acc, flat_idx, values, op, n_cells)
    return acc
