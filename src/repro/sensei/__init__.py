"""SENSEI — the generic in situ framework (with heterogeneous extensions).

SENSEI couples simulation codes to back-end data processing, transport,
I/O, and visualization through a single instrumentation, with run-time
switching between back-ends.  This package reproduces the framework
core plus the two execution-model extensions the paper contributes
(Section 3):

1. **Execution method** — ``lockstep`` (simulation and in situ take
   turns; zero-copy data access possible) or ``asynchronous`` (the in
   situ code deep-copies the relevant data, launches a thread, and
   returns immediately; simulation and analysis proceed concurrently).

2. **Placement** — run-time control over which accelerator (or the
   host) the in situ code executes on: manual explicit device selection
   or automatic selection via Eq. 1::

       d = (r mod n_u * s + d_0) mod n_a

   with ``r`` the MPI rank, ``n_u`` devices used per node, ``s`` the
   stride, ``d_0`` the offset, and ``n_a`` the devices per node.

Both are exposed through the analysis-adaptor base class API (so every
back-end gets them) and through SENSEI's run-time XML configuration
(:mod:`repro.sensei.configurable`).

Typical instrumentation::

    bridge = Bridge()
    bridge.initialize(comm, analyses=[BinningAnalysis(...)])
    while stepping:
        bridge.execute(sim_data_adaptor)
    bridge.finalize()
"""

from repro.sensei.data_adaptor import DataAdaptor, TableDataAdaptor
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.placement import (
    DevicePlacement,
    PlacementMode,
    select_device,
)
from repro.sensei.execution import ExecutionMethod
from repro.sensei.bridge import Bridge
from repro.sensei.configurable import ConfigurableAnalysis
from repro.sensei.backends import (
    BinningAnalysis,
    CallbackAnalysis,
    HistogramAnalysis,
    PosthocIO,
)
from repro.sensei.intransit import (
    EndpointRunner,
    InTransitBridge,
    InTransitLayout,
    run_in_transit,
)

__all__ = [
    "DataAdaptor",
    "TableDataAdaptor",
    "AnalysisAdaptor",
    "DevicePlacement",
    "PlacementMode",
    "select_device",
    "ExecutionMethod",
    "Bridge",
    "ConfigurableAnalysis",
    "BinningAnalysis",
    "HistogramAnalysis",
    "PosthocIO",
    "CallbackAnalysis",
    "InTransitLayout",
    "InTransitBridge",
    "EndpointRunner",
    "run_in_transit",
]
