"""The analysis-adaptor base class, with the heterogeneous extensions.

"The new control parameters and API are defined in the base class for
SENSEI analysis back-ends and therefore available to all back-ends."
(paper Section 3)

Back-ends implement two hooks:

- :meth:`AnalysisAdaptor.acquire` — take the data needed from the data
  adaptor, either zero-copy (lockstep) or as a deep copy
  (asynchronous);
- :meth:`AnalysisAdaptor.process` — run the analysis on an acquired
  payload, on the resolved device, against the given communicator.

The base class supplies everything else: execution-method dispatch
(lockstep calls ``process`` inline; asynchronous launches it on a
worker thread over a duplicated communicator), device placement via
:mod:`repro.sensei.placement`, and timing capture for the harness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExecutionError
from repro.hamr.runtime import current_clock
from repro.mpi.comm import Communicator, SelfCommunicator
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.execution import AsyncRunner, ExecutionMethod
from repro.sensei.placement import DevicePlacement, PlacementMode

__all__ = ["AnalysisAdaptor", "StepTiming"]


@dataclass
class StepTiming:
    """Per-execute timing record (simulated seconds).

    ``apparent`` is what the simulation observes (the blocked time on
    its clock); ``actual`` is the analysis's own busy time — equal under
    lockstep, very different under asynchronous execution (the paper's
    "<10 ms apparent" observation).
    """

    time_step: int
    apparent: float
    actual: float
    method: ExecutionMethod
    device_id: int


class AnalysisAdaptor(ABC):
    """Base class for all SENSEI analysis back-ends."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self._comm: Communicator = SelfCommunicator()
        self._async_comm: Communicator | None = None
        self._placement = DevicePlacement.auto()
        self._method = ExecutionMethod.LOCKSTEP
        self._frequency = 1
        self._runner: AsyncRunner | None = None
        self._initialized = False
        self._finalized = False
        self.timings: list[StepTiming] = []

    # -- the extension control API ---------------------------------------------------
    def set_execution_method(self, method: ExecutionMethod | str) -> None:
        """Select lockstep or asynchronous execution.

        Callable at any step boundary (the control plane's mode
        governor does): switching to lockstep first drains any
        in-flight asynchronous task so results stay ordered; switching
        to asynchronous defers worker/communicator setup to the next
        ``execute``.
        """
        if isinstance(method, str):
            method = ExecutionMethod.parse(method)
        if (
            method is ExecutionMethod.LOCKSTEP
            and self._runner is not None
            and self._runner.in_flight
        ):
            self._runner.drain()
        self._method = method

    def set_asynchronous(self, asynchronous: bool = True) -> None:
        self._method = (
            ExecutionMethod.ASYNCHRONOUS if asynchronous else ExecutionMethod.LOCKSTEP
        )

    @property
    def execution_method(self) -> ExecutionMethod:
        return self._method

    def set_placement(self, placement: DevicePlacement) -> None:
        self._placement = placement

    def set_device_id(self, device_id: int) -> None:
        """Manual explicit device selection (-1 = host)."""
        if device_id < 0:
            self._placement = DevicePlacement.host()
        else:
            self._placement = DevicePlacement.manual(device_id)

    def set_auto_placement(
        self, n_use: int | None = None, stride: int = 1, offset: int = 0
    ) -> None:
        """Automatic device selection with Eq. 1's control parameters."""
        self._placement = DevicePlacement.auto(n_use, stride, offset)

    @property
    def placement(self) -> DevicePlacement:
        return self._placement

    def set_frequency(self, frequency: int) -> None:
        """Run only every ``frequency``-th time step (1 = every step).

        The paper's runs analyze every iteration; production SENSEI
        deployments commonly thin the cadence, so the control lives in
        the base class alongside the heterogeneous extensions.
        """
        if frequency < 1:
            raise ExecutionError(f"frequency must be >= 1: {frequency}")
        self._frequency = int(frequency)

    @property
    def frequency(self) -> int:
        return self._frequency

    def resolve_device(self) -> int:
        """The device this rank's analysis runs on (-1 = host)."""
        return self._placement.resolve(self._comm.rank)

    # -- life cycle ----------------------------------------------------------------------
    def initialize(self, comm: Communicator | None = None) -> None:
        """Bind the communicator; duplicate it for asynchronous traffic.

        Must be called collectively (all ranks) before the first
        ``execute``; the bridge does this.
        """
        if self._initialized:
            return
        self._comm = comm if comm is not None else SelfCommunicator()
        if self._method is ExecutionMethod.ASYNCHRONOUS:
            # The analysis thread reduces over its own communicator so
            # its collectives cannot interleave with the simulation's.
            self._async_comm = self._comm.dup()
            self._runner = AsyncRunner(self.name)
        self._initialized = True

    def execute(self, data: DataAdaptor) -> bool:
        """Run the analysis for the data adaptor's current step."""
        if not self._initialized:
            self.initialize(data.get_comm())
        if self._finalized:
            raise ExecutionError(f"analysis {self.name!r} already finalized")
        if data.time_step % self._frequency:
            return True  # off-cadence step: skip (no timing entry)
        clock = current_clock()
        device_id = self.resolve_device()
        t0 = clock.now
        if self._method is ExecutionMethod.LOCKSTEP:
            payload = self.acquire(data, deep=False)
            self.process(payload, self._comm, device_id)
            apparent = clock.now - t0
            actual = apparent
        else:
            if self._runner is None:
                # The method was switched to asynchronous after
                # initialize (e.g. by the control plane's mode
                # governor): set up the worker lane on first use.
                self._async_comm = self._comm.dup()
                self._runner = AsyncRunner(self.name)
            payload = self.acquire(data, deep=True)
            step_comm = self._async_comm
            busy0 = self._runner.busy_sim_time
            self._runner.launch(
                lambda: self.process(payload, step_comm, device_id),
                start_time=clock.now,
            )
            apparent = clock.now - t0
            actual = float("nan")  # filled in on finalize for async steps
        self.timings.append(
            StepTiming(
                time_step=data.time_step,
                apparent=apparent,
                actual=actual,
                method=self._method,
                device_id=device_id,
            )
        )
        return True

    def finalize(self) -> None:
        """Drain asynchronous work and release resources."""
        if self._finalized:
            return
        if self._runner is not None:
            self._runner.drain()
            # Distribute the measured async busy time over the async steps.
            async_steps = [t for t in self.timings if t.method is ExecutionMethod.ASYNCHRONOUS]
            if async_steps:
                per_step = self._runner.busy_sim_time / len(async_steps)
                for t in async_steps:
                    t.actual = per_step
        self._finalized = True

    # -- statistics -------------------------------------------------------------------
    @property
    def total_apparent_time(self) -> float:
        return sum(t.apparent for t in self.timings)

    @property
    def total_actual_time(self) -> float:
        if self._runner is not None:
            # Mixed-mode runs (the control plane switches methods at
            # step boundaries) count lockstep steps too.
            return self.insitu_busy_time
        return sum(t.actual for t in self.timings)

    @property
    def insitu_busy_time(self) -> float:
        """Cumulative analysis busy time, valid mid-run under any mode.

        Unlike :attr:`total_actual_time` — whose async portion is only
        distributed into the timings on ``finalize`` — this counter is
        monotone while the run is still going, so the control plane can
        take per-step deltas from it.  It sums the lockstep steps'
        actual times with the async runner's accumulated busy time
        (which lags in-flight work by one step — the price of not
        blocking on it).
        """
        lockstep = sum(
            t.actual for t in self.timings
            if t.method is ExecutionMethod.LOCKSTEP
        )
        runner = self._runner.busy_sim_time if self._runner is not None else 0.0
        return lockstep + runner

    # -- back-end hooks ------------------------------------------------------------------
    @abstractmethod
    def acquire(self, data: DataAdaptor, deep: bool) -> Any:
        """Take what the analysis needs from the data adaptor.

        With ``deep=False`` (lockstep) return zero-copy references; with
        ``deep=True`` (asynchronous) return deep copies the simulation
        cannot subsequently invalidate.
        """

    @abstractmethod
    def process(self, payload: Any, comm: Communicator, device_id: int) -> None:
        """Run the analysis on an acquired payload.

        ``device_id`` is the resolved placement (-1 = host).  Runs on
        the simulation thread under lockstep and on a worker thread
        (with its own simulated clock and duplicated communicator)
        under asynchronous execution.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, method={self._method.value}, "
            f"placement={self._placement.mode.value})"
        )
