"""In transit execution: analysis on dedicated endpoint ranks.

Beyond on-node placement (the paper's focus), the SENSEI ecosystem also
moves data *off node* to dedicated analysis resources — the M-to-N
in transit mode (the paper's related work compares such strategies, and
its Section 1 lists "data transport" back-ends among SENSEI's
couplings).  This module implements that mode on the simulated
substrate, complementing the on-node placements:

- ``M`` simulation ranks produce data; ``N`` endpoint ranks consume it
  (``N < M`` typically — the whole point is concentrating analysis on
  fewer resources);
- an :class:`InTransitLayout` fixes the M-to-N redistribution through a
  pluggable partitioner (``block`` — the default, ``cyclic``, or
  ``weighted``; see :mod:`repro.transport.partition`);
- the simulation side instruments exactly like the in situ case —
  :class:`InTransitBridge` has the ``initialize`` / ``execute`` /
  ``finalize`` surface of :class:`repro.sensei.bridge.Bridge`, so a
  solver switches between in situ and in transit without code changes
  (SENSEI's run-time-switchable promise);
- each endpoint assembles its producers' tables and runs ordinary
  analysis back-ends against the endpoints' own sub-communicator, so
  reductions span the full dataset.

Data moves over :mod:`repro.transport`: a versioned, checksummed,
chunked wire format with pluggable compression, reliable delivery
(ACKs, dedup, retry with backoff), bounded in-flight credit windows,
and a graceful ``fin``/``fin_ack`` drain instead of a bare shutdown
tag.  Fault injection (drops, duplicates, reordering, corruption) is a
:class:`~repro.transport.config.TransportConfig` knob, so delivery
robustness is testable without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExecutionError, MPIError
from repro.hamr.runtime import current_clock
from repro.mpi.comm import CommCostModel, Communicator, run_spmd
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor, TableDataAdaptor
from repro.svtk.table import TableData
from repro.transport.channel import ReliableReceiver, ReliableSender
from repro.transport.config import TransportConfig
from repro.transport.partition import get_partitioner

__all__ = ["InTransitLayout", "InTransitBridge", "EndpointRunner", "run_in_transit"]


@dataclass(frozen=True)
class InTransitLayout:
    """The M-to-N redistribution map inside one world of ``m + n`` ranks.

    World ranks ``[0, m)`` are producers (simulation); ``[m, m + n)``
    are endpoints (analysis).  ``partitioner`` selects the mapping
    (``block``, ``cyclic``, ``weighted``); ``weights`` feeds the
    weighted partitioner one expected payload size per producer.
    """

    m: int
    n: int
    partitioner: str = "block"
    weights: tuple[float, ...] | None = None

    #: Cached producer -> endpoint-index assignment.
    _assignment: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self):
        if self.m < 1 or self.n < 1:
            raise ExecutionError(f"need m >= 1 and n >= 1, got {self.m}/{self.n}")
        if self.n > self.m:
            raise ExecutionError(
                f"more endpoints ({self.n}) than producers ({self.m}) "
                "defeats the purpose of in transit analysis"
            )
        try:
            assignment = get_partitioner(self.partitioner).assign(
                self.m, self.n, self.weights
            )
        except MPIError as exc:
            raise ExecutionError(str(exc), details=exc.details) from exc
        object.__setattr__(self, "_assignment", tuple(assignment))

    @property
    def world_size(self) -> int:
        return self.m + self.n

    def is_producer(self, world_rank: int) -> bool:
        return 0 <= world_rank < self.m

    def is_endpoint(self, world_rank: int) -> bool:
        return self.m <= world_rank < self.world_size

    def endpoint_of(self, producer: int) -> int:
        """World rank of the endpoint serving ``producer``."""
        if not self.is_producer(producer):
            raise ExecutionError(f"rank {producer} is not a producer")
        return self.m + self._assignment[producer]

    def producers_of(self, endpoint: int) -> list[int]:
        """World ranks of the producers an endpoint serves."""
        if not self.is_endpoint(endpoint):
            raise ExecutionError(f"rank {endpoint} is not an endpoint")
        return [p for p in range(self.m) if self.endpoint_of(p) == endpoint]


class InTransitBridge:
    """The simulation-side instrumentation for in transit analysis.

    Drop-in for :class:`repro.sensei.bridge.Bridge`: ``initialize``,
    ``execute(data_adaptor)``, ``finalize``.  Each ``execute`` ships the
    published mesh to this producer's endpoint through a
    :class:`~repro.transport.channel.ReliableSender`; ``finalize``
    drains the connection gracefully.
    """

    def __init__(
        self,
        layout: InTransitLayout,
        mesh_name: str = "bodies",
        transport: TransportConfig | None = None,
    ):
        self.layout = layout
        self.mesh_name = str(mesh_name)
        self.transport = transport if transport is not None else TransportConfig()
        self._world: Communicator | None = None
        self._endpoint: int | None = None
        self._sender: ReliableSender | None = None
        self._initialized = False
        self._finalized = False
        self._control = None
        self.step_costs: list[float] = []

    def attach_control(self, plane) -> None:
        """Attach a :class:`repro.control.ControlPlane` to this producer.

        Every ``execute`` then feeds the plane this step's transport
        measurements (raw/wire byte deltas, estimated wire time,
        retries, the ACK round-trip EWMA, and the in-flight high-water)
        and the plane's governors may retarget this endpoint's wire
        codec (``<control codec="on">``) and its credit window / chunk
        size (``<control flow="on">``, the AIMD flow governor).  Pair
        with ``TransportConfig(compression="adaptive")`` to retire the
        static codec choice entirely.
        """
        self._control = plane

    def initialize(self, world_comm: Communicator) -> None:
        if self._initialized:
            raise ExecutionError("in transit bridge already initialized")
        if not self.layout.is_producer(world_comm.rank):
            raise ExecutionError(
                f"rank {world_comm.rank} is not a producer in this layout"
            )
        self._world = world_comm
        self._endpoint = self.layout.endpoint_of(world_comm.rank)
        self._sender = ReliableSender(
            world_comm, self._endpoint, self.transport
        )
        self._initialized = True

    def execute(self, data: DataAdaptor) -> bool:
        if not self._initialized:
            raise ExecutionError("initialize the in transit bridge first")
        if self._finalized:
            raise ExecutionError("in transit bridge already finalized")
        clock = current_clock()
        t0 = clock.now
        table = data.get_mesh(self.mesh_name)
        if not isinstance(table, TableData):
            raise ExecutionError(
                f"in transit transport ships tables; {self.mesh_name!r} is "
                f"{type(table).__name__}"
            )
        self._sender.send_step(data.time_step, data.time, table)
        apparent = clock.now - t0
        self.step_costs.append(apparent)
        if self._control is not None:
            self._control.observe_transport_step(
                self._sender, data.time_step, apparent, table=table
            )
        return True

    def finalize(self) -> None:
        if self._finalized or not self._initialized:
            self._finalized = True
            return
        self._sender.close()
        self._finalized = True

    @property
    def control_plane(self):
        """The attached control plane, or None (reporting access)."""
        return self._control

    @property
    def metrics(self):
        """Transport counters for this producer (None before init)."""
        return self._sender.metrics if self._sender is not None else None

    @property
    def total_apparent_time(self) -> float:
        """Simulated time the producer spent shipping data."""
        return sum(self.step_costs)


class EndpointRunner:
    """One analysis endpoint: receives, assembles, analyzes.

    ``serve`` loops until every producer has drained.  Steps are
    processed in order; each step's tables from all producers are
    concatenated into one local table, and the analyses run against
    the endpoints' sub-communicator so reductions are global.
    """

    def __init__(
        self,
        layout: InTransitLayout,
        world_comm: Communicator,
        endpoint_comm: Communicator,
        analyses: Sequence[AnalysisAdaptor],
        mesh_name: str = "bodies",
        transport: TransportConfig | None = None,
    ):
        if not layout.is_endpoint(world_comm.rank):
            raise ExecutionError(
                f"rank {world_comm.rank} is not an endpoint in this layout"
            )
        self.layout = layout
        self.world = world_comm
        self.endpoint_comm = endpoint_comm
        self.analyses = list(analyses)
        self.mesh_name = str(mesh_name)
        self.transport = transport if transport is not None else TransportConfig()
        self.producers = layout.producers_of(world_comm.rank)
        self.receivers = {
            p: ReliableReceiver(world_comm, p, self.transport)
            for p in self.producers
        }
        self.steps_processed = 0

    @property
    def receiver_metrics(self) -> dict[int, object]:
        """Per-producer transport counters."""
        return {p: r.metrics for p, r in self.receivers.items()}

    def _assemble(self, payloads: list[dict[str, np.ndarray]]) -> TableData:
        table = TableData(self.mesh_name)
        if not payloads:
            return table
        names = list(payloads[0])
        for p in payloads[1:]:
            if list(p) != names:
                raise MPIError("producers shipped inconsistent column sets")
        for name in names:
            table.add_host_column(
                name, np.concatenate([p[name] for p in payloads])
            )
        return table

    def serve(self) -> int:
        """Process steps until every producer drains; returns the count."""
        for a in self.analyses:
            a.initialize(self.endpoint_comm)
        live = set(self.producers)
        adaptor = TableDataAdaptor(comm=self.endpoint_comm)
        while live:
            step_payloads: list[dict[str, np.ndarray]] = []
            step_id, step_time = None, 0.0
            for p in sorted(live):
                msg = self.receivers[p].receive_step()
                if msg is None:
                    live.discard(p)
                    continue
                ts, tt, cols = msg
                if step_id is None:
                    step_id, step_time = ts, tt
                elif ts != step_id:
                    raise MPIError(
                        f"producer {p} is at step {ts}, expected {step_id}"
                    )
                step_payloads.append(cols)
            if not step_payloads:
                break
            table = self._assemble(step_payloads)
            adaptor.set_table(self.mesh_name, table)
            adaptor.set_step(step_id, step_time)
            for a in self.analyses:
                a.execute(adaptor)
            self.steps_processed += 1
        for a in self.analyses:
            a.finalize()
        return self.steps_processed


def run_in_transit(
    layout: InTransitLayout,
    producer_main: Callable[[Communicator, InTransitBridge], object],
    analyses_factory: Callable[[], Sequence[AnalysisAdaptor]],
    mesh_name: str = "bodies",
    transport: TransportConfig | None = None,
    cost: CommCostModel | None = None,
    control=None,
    recorder=None,
) -> tuple[list[object], list[EndpointRunner]]:
    """Launch an M-producer / N-endpoint in transit run.

    ``producer_main(sim_comm, bridge)`` runs on each producer with a
    sub-communicator spanning the producers only, instrumented with an
    :class:`InTransitBridge` (call ``bridge.execute`` per step;
    ``finalize`` is invoked automatically afterwards).
    ``analyses_factory()`` builds each endpoint's analysis set.
    ``transport`` configures the wire (codec, chunking, retries, fault
    injection); ``cost`` overrides the interconnect cost model.
    ``control`` (a :class:`repro.control.ControlConfig`) attaches a
    fresh control plane to each producer's bridge, enabling adaptive
    codec selection on that producer's link.  ``recorder`` (a
    :class:`repro.trace.TraceRecorder`) captures a deterministic trace
    of the producers' traffic.

    Since the service plane landed this is a thin wrapper over
    :func:`repro.service.run_service` with a single collective
    pipeline: one tenant named ``mesh_name`` sharded over all ``n``
    endpoints, carrying the layout's partitioner and weights.  The
    single pipeline occupies tag index 0 — the legacy wire tags — and
    admission control stays off unless the control config arms it, so
    the classic path is bit-identical.

    Returns ``(producer_results, endpoint_runners)``.
    """
    from repro.service.plan import PipelineSpec, ServiceConfig
    from repro.service.runtime import run_service

    spec = PipelineSpec(
        name=mesh_name,
        mesh=mesh_name,
        shard_size=layout.n,
        collective=True,
        partitioner=layout.partitioner,
        producer_weights=layout.weights,
        transport=transport if transport is not None else TransportConfig(),
    )
    return run_service(
        ServiceConfig(pipelines=(spec,)),
        producer_main,
        {mesh_name: analyses_factory},
        m=layout.m,
        n=layout.n,
        cost=cost,
        control=control,
        recorder=recorder,
    )
