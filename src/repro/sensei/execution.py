"""Execution methods: lockstep and asynchronous.

"The new execution methods are: lockstep where the simulation and in
situ code take turns; and asynchronous where the in situ code uses
threading to execute concurrently with the simulation." (Section 3)

"With asynchronous execution, the in situ analysis code runs in a
separate thread ...  The in situ code deep copies the relevant data,
launches a thread for in situ processing, and returns immediately to
the simulation." (Section 4.3)

:class:`AsyncRunner` provides the threading machinery: real Python
threads carrying their own simulated clocks, one in-flight task per
analysis (a new launch first drains the previous one, modelling the
back-pressure a real implementation has), exception propagation at the
next interaction, and accumulated busy-time statistics for the
Figure 3 style reporting.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable

import numpy as np

from repro.errors import ExecutionError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.copier import transfer
from repro.hamr.runtime import current_clock, use_clock
from repro.hamr.view import accessible_view
from repro.hw.clock import SimClock
from repro.svtk.data_array import DataArray, HostDataArray
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.table import TableData

__all__ = ["ExecutionMethod", "AsyncRunner", "deep_copy_table"]


class ExecutionMethod(enum.Enum):
    """How the in situ code is scheduled relative to the simulation."""

    LOCKSTEP = "lockstep"
    ASYNCHRONOUS = "asynchronous"

    @classmethod
    def parse(cls, text: str) -> "ExecutionMethod":
        key = str(text).strip().lower()
        if key in ("async", "asynchr.", "asynchr"):
            key = "asynchronous"
        for m in cls:
            if m.value == key:
                return m
        raise ExecutionError(
            f"unknown execution method {text!r}; supported: "
            f"{[m.value for m in cls]} (plus alias 'async')"
        )


def deep_copy_table(table: TableData, clock: SimClock | None = None) -> TableData:
    """Deep copy the relevant data for asynchronous hand-off.

    Each column is copied in place (same memory space) so the analysis
    thread owns storage the simulation can immediately overwrite.  The
    copy cost lands on the calling (simulation) clock — this is the
    "apparent" in situ cost of asynchronous execution.
    """
    out = TableData(table.name)
    for name in table.column_names:
        col = table.column(name)
        if isinstance(col, HAMRDataArray):
            src = col.buffer
            dst_pm = src.allocator.pm_kind if not src.on_host else PMKind.HOST
            dst_loc = HOST_DEVICE_ID if src.on_host else src.device_id
            dst = transfer(
                src,
                dst_loc,
                pm=dst_pm,
                allocator=src.allocator,
                clock=clock,
                name=f"snapshot-{name}",
            )
            # The snapshot was allocated in place, so this view is a
            # zero-cost alias; it keeps the raw access on the sanctioned
            # location-aware path.
            with accessible_view(dst, dst_pm, dst_loc, clock=clock) as sp:
                copy = HAMRDataArray.zero_copy(
                    name,
                    sp.get(),
                    allocator=dst.allocator,
                    device_id=dst_loc,
                    owner=dst,
                )
            out.add_column(copy)
        else:
            values = np.array(col.as_numpy_host(), copy=True)
            src = Buffer.wrap(
                values, Allocator.MALLOC, name=f"snapshot-{name}", owner=values
            )
            # Charge the host memcpy to the caller.
            dst = transfer(src, HOST_DEVICE_ID, pm=PMKind.HOST, clock=clock)
            with accessible_view(dst, PMKind.HOST, HOST_DEVICE_ID, clock=clock) as sp:
                out.add_column(HostDataArray(name, sp.get()))
    return out


class AsyncRunner:
    """Single-lane asynchronous task execution with simulated clocks.

    Each launched task runs in a fresh thread whose simulated clock
    starts at the launch time on the caller's clock.  Only one task is
    in flight: launching while the previous task still runs first joins
    it (in both real and simulated time).  Exceptions raised inside a
    task surface on the next ``launch``/``drain`` call.
    """

    def __init__(self, name: str = "insitu"):
        self.name = str(name)
        self._thread: threading.Thread | None = None
        self._task_end_sim: float = 0.0
        self._error: BaseException | None = None
        self._busy_sim_time: float = 0.0
        self._tasks_run: int = 0
        self._lock = threading.Lock()

    # -- statistics -----------------------------------------------------------
    @property
    def busy_sim_time(self) -> float:
        """Total simulated time spent inside tasks so far."""
        with self._lock:
            return self._busy_sim_time

    @property
    def tasks_run(self) -> int:
        with self._lock:
            return self._tasks_run

    @property
    def last_end_time(self) -> float:
        """Simulated completion time of the most recent task."""
        with self._lock:
            return self._task_end_sim

    def snapshot(self) -> tuple[float, int, float]:
        """Atomic ``(busy_sim_time, tasks_run, last_end_time)`` triple.

        The individual properties each take the lock separately, so a
        control-plane tap reading them back to back can see a torn view
        (a task completing in between).  Deltas fed to governors should
        come from one snapshot.
        """
        with self._lock:
            return self._busy_sim_time, self._tasks_run, self._task_end_sim

    # -- execution ---------------------------------------------------------------
    def launch(self, fn: Callable[[], None], start_time: float | None = None) -> float:
        """Start ``fn`` in a worker thread; returns the launch time.

        If the previous task has not finished, the caller blocks until
        it has — and its simulated clock advances to the previous task's
        simulated end, modelling the stall.
        """
        clock = current_clock()
        self.drain()
        if start_time is None:
            start_time = clock.now

        def worker():
            task_clock = SimClock(start_time, name=f"{self.name}-task")
            try:
                with use_clock(task_clock):
                    fn()
            except BaseException as exc:  # noqa: BLE001 - reported on drain
                with self._lock:
                    self._error = exc
            finally:
                with self._lock:
                    self._task_end_sim = max(self._task_end_sim, task_clock.now)
                    self._busy_sim_time += task_clock.now - start_time
                    self._tasks_run += 1

        t = threading.Thread(target=worker, name=f"{self.name}-worker")
        self._thread = t
        t.start()
        return float(start_time)

    def drain(self) -> None:
        """Join any in-flight task; re-raise its error if it failed.

        The caller's simulated clock is advanced to the task's simulated
        end only if the task finished *later* than the caller — i.e.
        only when the simulation genuinely had to wait.
        """
        t = self._thread
        if t is not None:
            t.join()
            self._thread = None
            clock = current_clock()
            with self._lock:
                end = self._task_end_sim
            if end > clock.now:
                clock.wait_for(end)
        with self._lock:
            if self._error is not None:
                err, self._error = self._error, None
                raise ExecutionError(
                    f"asynchronous analysis {self.name!r} failed"
                ) from err

    @property
    def in_flight(self) -> bool:
        t = self._thread
        return t is not None and t.is_alive()
