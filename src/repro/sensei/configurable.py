"""ConfigurableAnalysis: XML-driven back-end selection and dispatch.

The paper's runs configure 9 data-binning operator instances (one per
coordinate system) through SENSEI's XML feature and let SENSEI
orchestrate them sequentially.  :class:`ConfigurableAnalysis`
reproduces that: it parses the XML, instantiates each enabled back-end
from the registry, applies the common execution/placement attributes
via the base-class control API, and fans each ``execute`` out to the
children in document order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.errors import ConfigError
from repro.mpi.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.backends.histogram import HistogramAnalysis
from repro.sensei.backends.writer import PosthocIO
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.placement import DevicePlacement, PlacementMode
from repro.sensei.xml_config import AnalysisConfig, parse_document

__all__ = ["ConfigurableAnalysis", "register_backend"]


def _build_data_binning(cfg: AnalysisConfig) -> AnalysisAdaptor:
    mesh = cfg.require("mesh")
    axis_names = cfg.get_list("axes")
    if not axis_names:
        raise ConfigError("data_binning requires axes=\"col[,col...]\"")
    bins = cfg.get_list("bins")
    if len(bins) == 1:
        bins = bins * len(axis_names)
    if len(bins) != len(axis_names):
        raise ConfigError(
            f"data_binning: {len(axis_names)} axes but {len(bins)} bin counts"
        )
    lows = cfg.get_list("low") or [None] * len(axis_names)
    highs = cfg.get_list("high") or [None] * len(axis_names)
    if len(lows) != len(axis_names) or len(highs) != len(axis_names):
        raise ConfigError("data_binning: low/high must match the axis count")
    axes = []
    for name, nb, lo, hi in zip(axis_names, bins, lows, highs):
        try:
            n_bins = int(nb)
        except ValueError:
            raise ConfigError(f"data_binning: bad bin count {nb!r}") from None
        axes.append(
            AxisSpec(
                name,
                n_bins,
                float(lo) if lo is not None else None,
                float(hi) if hi is not None else None,
            )
        )
    requests = []
    for spec in cfg.get_list("variables"):
        if ":" not in spec:
            raise ConfigError(
                f"data_binning: variables entries are 'name:op', got {spec!r}"
            )
        var, op = spec.rsplit(":", 1)
        requests.append(BinRequest(ReductionOp.parse(op), var.strip()))
    analysis = BinningAnalysis(mesh, axes, requests, name=cfg.get("name", ""))
    strategy = cfg.get("strategy")
    if strategy is not None:
        from repro.binning.strategies import BinningStrategy

        analysis.binner.device_strategy = BinningStrategy.parse(strategy)
    return analysis


def _build_histogram(cfg: AnalysisConfig) -> AnalysisAdaptor:
    bins = cfg.get_int("bins", 10)
    return HistogramAnalysis(
        cfg.require("mesh"),
        cfg.require("array"),
        bins=bins,
        low=cfg.get_float("low"),
        high=cfg.get_float("high"),
        name=cfg.get("name", ""),
    )


def _build_statistics(cfg: AnalysisConfig) -> AnalysisAdaptor:
    from repro.sensei.backends.stats import StatisticsAnalysis

    columns = cfg.get_list("columns") or None
    return StatisticsAnalysis(
        cfg.require("mesh"), columns=columns, name=cfg.get("name", "")
    )


def _build_posthoc_io(cfg: AnalysisConfig) -> AnalysisAdaptor:
    return PosthocIO(
        cfg.require("mesh"),
        cfg.require("output_dir"),
        frequency=cfg.get_int("frequency", 1),
        fmt=cfg.get("format", "vtk"),
        name=cfg.get("name", ""),
    )


_REGISTRY: dict[str, Callable[[AnalysisConfig], AnalysisAdaptor]] = {
    "data_binning": _build_data_binning,
    "histogram": _build_histogram,
    "statistics": _build_statistics,
    "posthoc_io": _build_posthoc_io,
}


def register_backend(
    type_name: str, factory: Callable[[AnalysisConfig], AnalysisAdaptor]
) -> None:
    """Register a custom back-end type for XML configuration."""
    _REGISTRY[str(type_name)] = factory


def _apply_common_controls(analysis: AnalysisAdaptor, cfg: AnalysisConfig) -> None:
    """Apply the paper's execution/placement attributes to a back-end."""
    execution = cfg.get("execution")
    if execution is not None:
        analysis.set_execution_method(execution)
    frequency = cfg.get_int("frequency")
    if frequency is not None:
        analysis.set_frequency(frequency)
    placement = cfg.get("placement")
    n_use = cfg.get_int("n_use", cfg.get_int("devices_per_node"))
    stride = cfg.get_int("stride", 1)
    offset = cfg.get_int("offset", 0)
    if placement is not None:
        mode = PlacementMode.parse(placement)
        if mode is PlacementMode.HOST:
            analysis.set_placement(DevicePlacement.host())
        elif mode is PlacementMode.MANUAL:
            device = cfg.get_int("device")
            if device is None:
                raise ConfigError("manual placement requires device=\"N\"")
            analysis.set_device_id(device)
        else:
            analysis.set_auto_placement(n_use, stride, offset)
    elif any(k in cfg.attrs for k in ("n_use", "devices_per_node", "stride", "offset")):
        analysis.set_auto_placement(n_use, stride, offset)


class ConfigurableAnalysis(AnalysisAdaptor):
    """An analysis adaptor assembled from a run-time XML configuration."""

    def __init__(self, xml: str | None = None, path: str | Path | None = None):
        super().__init__("configurable")
        if (xml is None) == (path is None):
            raise ConfigError("provide exactly one of xml= or path=")
        if xml is None:
            try:
                xml = Path(path).read_text(encoding="utf-8")
            except OSError as exc:
                raise ConfigError(f"cannot read config {path}: {exc}") from exc
        document = parse_document(xml)
        #: Parsed ``<transport>`` element, or None — an in transit
        #: driver reads this to configure the data plane.
        self.transport = document.transport
        #: Parsed ``<control>`` element, or None — a harness builds a
        #: :class:`repro.control.ControlPlane` from this and attaches
        #: it to the bridge(s) driving the run.
        self.control = document.control
        self.children: list[AnalysisAdaptor] = []
        for cfg in document.analyses:
            if not cfg.enabled:
                continue
            factory = _REGISTRY.get(cfg.type)
            if factory is None:
                raise ConfigError(
                    f"unknown analysis type {cfg.type!r}; registered: "
                    f"{sorted(_REGISTRY)}"
                )
            analysis = factory(cfg)
            _apply_common_controls(analysis, cfg)
            self.children.append(analysis)

    # ConfigurableAnalysis delegates whole-sale; the acquire/process
    # split of a leaf back-end does not apply.  The control API fans
    # out to the children so a control-plane actuator aimed at this
    # adaptor retunes every back-end it orchestrates.
    def set_execution_method(self, method) -> None:
        super().set_execution_method(method)
        for child in self.children:
            child.set_execution_method(method)

    def set_placement(self, placement) -> None:
        super().set_placement(placement)
        for child in self.children:
            child.set_placement(placement)

    def initialize(self, comm: Communicator | None = None) -> None:
        if self._initialized:
            return
        self._comm = comm if comm is not None else self._comm
        for child in self.children:
            child.initialize(comm)
        self._initialized = True

    def execute(self, data: DataAdaptor) -> bool:
        if not self._initialized:
            self.initialize(data.get_comm())
        ok = True
        for child in self.children:
            ok = bool(child.execute(data)) and ok
        return ok

    def finalize(self) -> None:
        if self._finalized:
            return
        for child in self.children:
            child.finalize()
        self._finalized = True

    @property
    def total_actual_time(self) -> float:
        return sum(child.total_actual_time for child in self.children)

    @property
    def total_apparent_time(self) -> float:
        return sum(child.total_apparent_time for child in self.children)

    @property
    def insitu_busy_time(self) -> float:
        return sum(child.insitu_busy_time for child in self.children)

    def acquire(self, data: DataAdaptor, deep: bool):  # pragma: no cover
        raise NotImplementedError("ConfigurableAnalysis delegates to children")

    def process(self, payload, comm, device_id):  # pragma: no cover
        raise NotImplementedError("ConfigurableAnalysis delegates to children")
