"""Analysis back-ends.

Every back-end derives from
:class:`repro.sensei.analysis_adaptor.AnalysisAdaptor` and therefore
inherits the heterogeneous execution controls (execution method,
placement) the paper adds to the base class.

- :class:`~repro.sensei.backends.binning.BinningAnalysis` — the data
  binning operator used in the paper's evaluation;
- :class:`~repro.sensei.backends.histogram.HistogramAnalysis` — a 1-D
  histogram (SENSEI's classic smoke-test back-end);
- :class:`~repro.sensei.backends.writer.PosthocIO` — particle output
  for post hoc visualization;
- :class:`~repro.sensei.backends.callback.CallbackAnalysis` — wraps a
  user Python callable (the equivalent of SENSEI's Python analysis).
"""

from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.backends.histogram import HistogramAnalysis
from repro.sensei.backends.stats import ColumnStats, StatisticsAnalysis
from repro.sensei.backends.writer import PosthocIO
from repro.sensei.backends.callback import CallbackAnalysis

__all__ = [
    "BinningAnalysis",
    "HistogramAnalysis",
    "StatisticsAnalysis",
    "ColumnStats",
    "PosthocIO",
    "CallbackAnalysis",
]
