"""Post hoc I/O back-end: writes particle state for offline visualization.

Newton++ "has a VTK compatible output format for post processing and
visualization" (paper Section 4.1); this back-end provides that path
through SENSEI, so any instrumented simulation gains it.  (The paper's
evaluation runs disabled post hoc I/O; the harness does the same.)
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import ExecutionError
from repro.mpi.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.backends.binning import BinningPayload
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.execution import deep_copy_table
from repro.svtk.table import TableData
from repro.svtk.writer import write_csv_table, write_vtk_particles

__all__ = ["PosthocIO"]


class PosthocIO(AnalysisAdaptor):
    """Writes the named mesh to disk every ``frequency`` steps.

    ``fmt`` selects ``"vtk"`` (POLYDATA point cloud; requires the
    coordinate columns to exist) or ``"csv"`` (whole table).  Output
    files are ``{output_dir}/{mesh}_{step:06d}_r{rank}.{ext}``.
    """

    def __init__(
        self,
        mesh_name: str,
        output_dir: str | os.PathLike,
        frequency: int = 1,
        fmt: str = "vtk",
        coords: tuple[str, str, str] = ("x", "y", "z"),
        name: str = "",
    ):
        super().__init__(name or f"posthoc_io[{mesh_name}]")
        if fmt not in ("vtk", "csv"):
            raise ExecutionError(f"unknown format {fmt!r}; use 'vtk' or 'csv'")
        self.set_frequency(frequency)  # cadence comes from the base class
        self.mesh_name = str(mesh_name)
        self.output_dir = Path(output_dir)
        self.fmt = fmt
        self.coords = tuple(coords)
        self.files_written: list[Path] = []

    def acquire(self, data: DataAdaptor, deep: bool) -> BinningPayload:
        table = data.get_mesh(self.mesh_name)
        if not isinstance(table, TableData):
            raise ExecutionError(
                f"posthoc_io writes tabular meshes; {self.mesh_name!r} is "
                f"{type(table).__name__}"
            )
        if deep:
            table = deep_copy_table(table)
        return BinningPayload(table=table, time_step=data.time_step, time=data.time)

    def process(
        self, payload: BinningPayload, comm: Communicator, device_id: int
    ) -> None:
        self.output_dir.mkdir(parents=True, exist_ok=True)
        ext = "vtk" if self.fmt == "vtk" else "csv"
        path = (
            self.output_dir
            / f"{self.mesh_name}_{payload.time_step:06d}_r{comm.rank}.{ext}"
        )
        table = payload.table
        if self.fmt == "csv":
            write_csv_table(table, path)
        else:
            pos = [table.column(c) for c in self.coords if c in table]
            if not pos:
                raise ExecutionError(
                    f"mesh {self.mesh_name!r} has none of the coordinate "
                    f"columns {self.coords}"
                )
            attrs = [
                table.column(c)
                for c in table.column_names
                if c not in self.coords
            ]
            write_vtk_particles(pos, path, attributes=attrs)
        self.files_written.append(path)
