"""Descriptive-statistics back-end.

The classic SENSEI smoke-test analysis alongside the histogram: per
array, the global minimum / maximum / mean / standard deviation across
all ranks each step.  Statistics merge exactly (not by averaging
averages): each rank contributes ``(n, sum, sum of squares, min, max)``
and the moments are combined, so the result is identical to a serial
computation over the concatenated data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.mpi.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.backends.binning import BinningPayload
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.execution import deep_copy_table
from repro.svtk.table import TableData

__all__ = ["ColumnStats", "StatisticsAnalysis"]


@dataclass(frozen=True)
class ColumnStats:
    """Global statistics of one column at one step."""

    name: str
    n: int
    minimum: float
    maximum: float
    mean: float
    std: float


class StatisticsAnalysis(AnalysisAdaptor):
    """Global min/max/mean/std of selected columns, every executed step.

    ``columns=None`` processes every column of the mesh.  Results are
    kept per step in :attr:`history` (list of dicts keyed by column).
    """

    def __init__(self, mesh_name: str, columns: list[str] | None = None,
                 name: str = ""):
        super().__init__(name or f"statistics[{mesh_name}]")
        self.mesh_name = str(mesh_name)
        self.columns = list(columns) if columns is not None else None
        self.history: list[dict[str, ColumnStats]] = []

    def acquire(self, data: DataAdaptor, deep: bool) -> BinningPayload:
        table = data.get_mesh(self.mesh_name)
        if not isinstance(table, TableData):
            raise ExecutionError(
                f"statistics consumes tabular meshes; {self.mesh_name!r} is "
                f"{type(table).__name__}"
            )
        wanted = self.columns if self.columns is not None else list(table.column_names)
        missing = [c for c in wanted if c not in table]
        if missing:
            raise ExecutionError(
                f"mesh {self.mesh_name!r} lacks columns {missing}"
            )
        if deep:
            subset = TableData(table.name)
            for c in wanted:
                subset.add_column(table.column(c))
            table = deep_copy_table(subset)
        return BinningPayload(table=table, time_step=data.time_step,
                              time=data.time)

    def process(self, payload: BinningPayload, comm: Communicator,
                device_id: int) -> None:
        table = payload.table
        wanted = self.columns if self.columns is not None else list(table.column_names)
        step_stats: dict[str, ColumnStats] = {}
        for col in wanted:
            values = np.asarray(table.column(col).as_numpy_host(), dtype=np.float64)
            n = int(values.size)
            s = float(values.sum()) if n else 0.0
            sq = float(np.square(values).sum()) if n else 0.0
            lo = float(values.min()) if n else np.inf
            hi = float(values.max()) if n else -np.inf
            # Exact distributed merge of the raw moments.
            n = comm.allreduce(n, "sum")
            s = comm.allreduce(s, "sum")
            sq = comm.allreduce(sq, "sum")
            lo = comm.allreduce(lo, "min")
            hi = comm.allreduce(hi, "max")
            if n:
                mean = s / n
                var = max(0.0, sq / n - mean * mean)
                stats = ColumnStats(col, n, lo, hi, mean, float(np.sqrt(var)))
            else:
                stats = ColumnStats(col, 0, np.nan, np.nan, np.nan, np.nan)
            step_stats[col] = stats
        self.history.append(step_stats)

    @property
    def latest(self) -> dict[str, ColumnStats] | None:
        return self.history[-1] if self.history else None
