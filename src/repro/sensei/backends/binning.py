"""The data-binning analysis back-end.

One instance handles one coordinate system ("Binning of each coordinate
system was done sequentially in a separate data binning operator
instance and orchestrated by SENSEI using its XML configuration
feature" — paper Section 4.3).  Within the instance, any number of
variables are binned with any of the supported reductions.

Under lockstep execution the back-end reads the simulation's columns
zero-copy; under asynchronous execution the base-class machinery hands
it a deep copy and runs :meth:`process` on a worker thread on the
resolved device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest, DataBinner
from repro.errors import BinningError, ExecutionError
from repro.mpi.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.execution import deep_copy_table
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.table import TableData

__all__ = ["BinningAnalysis", "BinningPayload"]


@dataclass
class BinningPayload:
    """What one step hands to :meth:`BinningAnalysis.process`."""

    table: TableData
    time_step: int
    time: float


class BinningAnalysis(AnalysisAdaptor):
    """SENSEI back-end wrapping :class:`repro.binning.DataBinner`.

    Parameters
    ----------
    mesh_name:
        The data-adaptor mesh (table) to consume.
    axes, requests:
        Binning configuration (see :mod:`repro.binning`).
    result_callback:
        Optional callable invoked with each result mesh (e.g. a writer).
        Called on whichever thread runs the analysis.
    keep_results:
        Keep result meshes in :attr:`results` (default keeps only the
        latest to bound memory; set True for tests/examples needing the
        full history).
    """

    def __init__(
        self,
        mesh_name: str,
        axes: Sequence[AxisSpec],
        requests: Sequence[BinRequest] = (),
        name: str = "",
        result_callback: Callable[[UniformCartesianMesh, int], None] | None = None,
        keep_results: bool = False,
    ):
        axes = tuple(axes)
        super().__init__(name or f"binning[{','.join(a.column for a in axes)}]")
        self.mesh_name = str(mesh_name)
        self.binner = DataBinner(axes, requests, name=self.name)
        self.result_callback = result_callback
        self.keep_results = bool(keep_results)
        self.results: list[UniformCartesianMesh] = []
        self.latest: UniformCartesianMesh | None = None

    # -- hooks -------------------------------------------------------------------
    def acquire(self, data: DataAdaptor, deep: bool) -> BinningPayload:
        table = data.get_mesh(self.mesh_name)
        if not isinstance(table, TableData):
            raise BinningError(
                f"binning consumes tabular data; mesh {self.mesh_name!r} is "
                f"{type(table).__name__}"
            )
        missing = [
            ax.column for ax in self.binner.axes if ax.column not in table
        ]
        if missing:
            raise BinningError(
                f"mesh {self.mesh_name!r} lacks axis columns {missing}; "
                f"has {list(table.column_names)}"
            )
        if deep:
            # "The in situ code deep copies the relevant data" — only the
            # columns this operator touches.
            needed = {ax.column for ax in self.binner.axes}
            needed |= {
                r.variable for r in self.binner.requests if r.variable is not None
            }
            subset = TableData(table.name)
            for col in table.column_names:
                if col in needed:
                    subset.add_column(table.column(col))
            table = deep_copy_table(subset)
        return BinningPayload(table=table, time_step=data.time_step, time=data.time)

    def process(
        self, payload: BinningPayload, comm: Communicator, device_id: int
    ) -> None:
        mesh = self.binner.execute(payload.table, comm=comm, device_id=device_id)
        self.latest = mesh
        if self.keep_results:
            self.results.append(mesh)
        if self.result_callback is not None:
            self.result_callback(mesh, payload.time_step)
