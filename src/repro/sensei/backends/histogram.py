"""A 1-D histogram back-end (SENSEI's classic smoke-test analysis).

Counts one array's values into uniformly spaced bins with globally
consistent bounds.  Internally this is a one-axis data binning, which
means it automatically supports every placement and execution method.
"""

from __future__ import annotations

import numpy as np

from repro.binning.axes import AxisSpec
from repro.sensei.backends.binning import BinningAnalysis
from repro.svtk.mesh import UniformCartesianMesh

__all__ = ["HistogramAnalysis"]


class HistogramAnalysis(BinningAnalysis):
    """Histogram of one column of a tabular mesh."""

    def __init__(
        self,
        mesh_name: str,
        array: str,
        bins: int = 10,
        low: float | None = None,
        high: float | None = None,
        name: str = "",
    ):
        super().__init__(
            mesh_name,
            axes=[AxisSpec(array, int(bins), low, high)],
            name=name or f"histogram[{array}]",
        )
        self.array = str(array)
        self.bins = int(bins)

    def counts(self) -> np.ndarray:
        """The latest histogram counts (empty array before any step)."""
        if self.latest is None:
            return np.array([])
        return self.latest.cell_array_as_grid("count")

    def edges(self) -> np.ndarray:
        """Bin edges matching :meth:`counts`."""
        if self.latest is None:
            return np.array([])
        mesh: UniformCartesianMesh = self.latest
        return mesh.cell_edges(0)
