"""User-callback back-end — SENSEI's Python-analysis equivalent.

Wraps an arbitrary callable ``fn(table, time_step, time, comm,
device_id)`` as a full analysis adaptor, so ad hoc analyses inherit
placement and execution-method control for free.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExecutionError
from repro.mpi.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.backends.binning import BinningPayload
from repro.sensei.data_adaptor import DataAdaptor
from repro.sensei.execution import deep_copy_table
from repro.svtk.table import TableData

__all__ = ["CallbackAnalysis"]


class CallbackAnalysis(AnalysisAdaptor):
    """Run a user callable as an in situ analysis."""

    def __init__(
        self,
        mesh_name: str,
        fn: Callable[[TableData, int, float, Communicator, int], None],
        name: str = "",
    ):
        super().__init__(name or f"callback[{getattr(fn, '__name__', 'fn')}]")
        if not callable(fn):
            raise ExecutionError("CallbackAnalysis requires a callable")
        self.mesh_name = str(mesh_name)
        self.fn = fn

    def acquire(self, data: DataAdaptor, deep: bool) -> BinningPayload:
        table = data.get_mesh(self.mesh_name)
        if not isinstance(table, TableData):
            raise ExecutionError(
                f"callback consumes tabular meshes; {self.mesh_name!r} is "
                f"{type(table).__name__}"
            )
        if deep:
            table = deep_copy_table(table)
        return BinningPayload(table=table, time_step=data.time_step, time=data.time)

    def process(
        self, payload: BinningPayload, comm: Communicator, device_id: int
    ) -> None:
        self.fn(payload.table, payload.time_step, payload.time, comm, device_id)
