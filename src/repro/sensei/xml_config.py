"""Run-time XML configuration parsing.

SENSEI selects and configures back-ends at run time from an XML file;
the paper's evaluation drives all 9 binning operator instances this way
(Section 4.3) and exposes the new execution/placement controls as
attributes.  The schema::

    <sensei>
      <transport compression="zlib" chunk_kib="64" max_inflight="8"
                 retries="8" partitioner="block"/>
      <control enabled="1" codec="on" execution="freeze"
               placement="off" pool="on" flow="on" interval="1" seed="0"
               coordination="node" coordination_interval="4">
        <flow min_credits="1" max_credits="64"
              min_chunk="4096" max_chunk="262144"/>
      </control>
      <analysis type="data_binning" enabled="1" mesh="bodies"
                axes="x,y" bins="256,256"
                variables="mass:sum,vx:average"
                execution="asynchronous"
                placement="auto" n_use="1" stride="1" offset="3"/>
      <analysis type="histogram" mesh="bodies" array="mass" bins="64"/>
      <analysis type="posthoc_io" mesh="bodies" output_dir="./out"
                frequency="10" format="csv"/>
    </sensei>

At most one ``<transport>`` element configures the in transit data
plane (see :class:`repro.transport.config.TransportConfig`); it is
ignored by purely in situ runs.  At most one ``<control>`` element
configures the adaptive control plane (see
:class:`repro.control.plan.ControlConfig`) — each governor attribute
takes ``on``, ``off``, or ``freeze`` (observe and log, never actuate);
``coordination="node"`` upgrades placement control to the
allreduce-coordinated cross-rank governor.  Without the element no
control plane exists and every knob keeps its static setting.

At most one ``<service>`` element declares the multi-pipeline
in-transit service plane (see
:class:`repro.service.plan.ServiceConfig`): nested ``<pipeline>``
elements name each tenant, with per-tenant transport attributes and
the admission-control knobs (``budget``, ``skew``, ``cooldown``,
``interval``) on ``<service>`` itself::

    <service budget="32" skew="1.5" interval="4">
      <pipeline name="hot" weight="8" shard_size="2" compression="zlib"/>
      <pipeline name="bulk" weight="1" partitioner="cyclic"/>
    </service>

Common attributes (every ``<analysis>``):

- ``type`` (required) — back-end registry key;
- ``enabled`` — "1"/"0" (default enabled);
- ``execution`` — ``lockstep`` (default) or ``asynchronous``;
- ``placement`` — ``auto`` (default), ``host``, or ``manual``;
- ``device`` — device ordinal for manual placement;
- ``n_use`` / ``stride`` / ``offset`` — Eq. 1 parameters for auto
  placement (``devices_per_node`` is accepted as an alias of
  ``n_use``).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.plan import ControlConfig
    from repro.service.plan import ServiceConfig
    from repro.transport.config import TransportConfig

__all__ = [
    "AnalysisConfig",
    "SenseiConfig",
    "parse_document",
    "parse_xml",
    "parse_file",
]


@dataclass(frozen=True)
class AnalysisConfig:
    """One parsed ``<analysis>`` element."""

    type: str
    enabled: bool = True
    attrs: dict[str, str] = field(default_factory=dict)

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.attrs.get(key, default)

    def require(self, key: str) -> str:
        try:
            return self.attrs[key]
        except KeyError:
            raise ConfigError(
                f"analysis type={self.type!r} requires attribute {key!r}"
            ) from None

    def get_int(self, key: str, default: int | None = None) -> int | None:
        raw = self.attrs.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConfigError(
                f"analysis type={self.type!r}: attribute {key!r} must be an "
                f"integer, got {raw!r}"
            ) from None

    def get_float(self, key: str, default: float | None = None) -> float | None:
        raw = self.attrs.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ConfigError(
                f"analysis type={self.type!r}: attribute {key!r} must be a "
                f"number, got {raw!r}"
            ) from None

    def get_list(self, key: str, default: list[str] | None = None) -> list[str]:
        raw = self.attrs.get(key)
        if raw is None:
            return list(default or [])
        return [item.strip() for item in raw.split(",") if item.strip()]


@dataclass(frozen=True)
class SenseiConfig:
    """A fully parsed ``<sensei>`` document.

    ``transport`` is None when the document has no ``<transport>``
    element — in situ configurations never need one.  ``control`` is
    None when there is no ``<control>`` element, in which case no
    control plane exists and every knob stays at its static setting.
    """

    analyses: tuple[AnalysisConfig, ...] = ()
    transport: "TransportConfig | None" = None
    control: "ControlConfig | None" = None
    service: "ServiceConfig | None" = None


def parse_document(text: str) -> SenseiConfig:
    """Parse a SENSEI XML document: analyses plus optional transport."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigError(f"malformed XML: {exc}") from exc
    if root.tag != "sensei":
        raise ConfigError(f"root element must be <sensei>, got <{root.tag}>")
    configs: list[AnalysisConfig] = []
    transport = None
    control = None
    service = None
    for child in root:
        if child.tag == "transport":
            if transport is not None:
                raise ConfigError("at most one <transport> element is allowed")
            from repro.transport.config import TransportConfig

            transport = TransportConfig.from_xml_attrs(child.attrib)
            continue
        if child.tag == "control":
            if control is not None:
                raise ConfigError("at most one <control> element is allowed")
            from repro.control.plan import ControlConfig

            flow_attrs = None
            for sub in child:
                if sub.tag != "flow":
                    raise ConfigError(
                        f"unexpected element <{sub.tag}> inside <control>; "
                        "only <flow> is allowed"
                    )
                if flow_attrs is not None:
                    raise ConfigError(
                        "at most one <flow> element is allowed"
                    )
                flow_attrs = dict(sub.attrib)
            control = ControlConfig.from_xml_attrs(
                child.attrib, flow_attrs=flow_attrs
            )
            continue
        if child.tag == "service":
            if service is not None:
                raise ConfigError("at most one <service> element is allowed")
            from repro.service.plan import ServiceConfig

            service = ServiceConfig.from_xml_element(child)
            continue
        if child.tag != "analysis":
            raise ConfigError(
                f"unexpected element <{child.tag}>; only <analysis>, "
                "<transport>, <control>, and <service> are allowed"
            )
        attrs = dict(child.attrib)
        atype = attrs.pop("type", None)
        if not atype:
            raise ConfigError("<analysis> element missing the 'type' attribute")
        enabled_raw = attrs.pop("enabled", "1").strip().lower()
        if enabled_raw in ("1", "true", "yes", "on"):
            enabled = True
        elif enabled_raw in ("0", "false", "no", "off"):
            enabled = False
        else:
            raise ConfigError(f"invalid enabled value {enabled_raw!r}")
        configs.append(AnalysisConfig(type=atype, enabled=enabled, attrs=attrs))
    return SenseiConfig(
        analyses=tuple(configs), transport=transport, control=control,
        service=service,
    )


def parse_xml(text: str) -> list[AnalysisConfig]:
    """Parse a SENSEI XML document into analysis configs."""
    return list(parse_document(text).analyses)


def parse_file(path: str | Path) -> list[AnalysisConfig]:
    """Parse a SENSEI XML configuration file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read config {path}: {exc}") from exc
    return parse_xml(text)
