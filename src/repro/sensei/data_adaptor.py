"""SENSEI data adaptors — the simulation-facing side of the interface.

A data adaptor presents the simulation's current state to analysis
back-ends on demand: named meshes (here: tables or multi-block
datasets) whose arrays are wrapped zero-copy whenever possible.  The
adaptor owns nothing; ``release_data`` drops the references taken for
the current step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.errors import ExecutionError
from repro.mpi.comm import Communicator, SelfCommunicator
from repro.svtk.table import TableData

__all__ = ["DataAdaptor", "TableDataAdaptor"]


class DataAdaptor(ABC):
    """Presents simulation state to analysis back-ends."""

    def __init__(self, comm: Communicator | None = None):
        self._comm = comm if comm is not None else SelfCommunicator()
        self._time = 0.0
        self._time_step = 0

    # -- simulation clock ---------------------------------------------------------
    @property
    def time(self) -> float:
        """Current simulated physical time."""
        return self._time

    @property
    def time_step(self) -> int:
        """Current iteration number."""
        return self._time_step

    def set_step(self, time_step: int, time: float) -> None:
        """Update the adaptor's notion of the current step."""
        self._time_step = int(time_step)
        self._time = float(time)

    # -- communicator ------------------------------------------------------------
    def get_comm(self) -> Communicator:
        return self._comm

    # -- meshes -------------------------------------------------------------------
    @abstractmethod
    def get_mesh_names(self) -> tuple[str, ...]:
        """Names of the meshes the simulation can provide."""

    @abstractmethod
    def get_mesh(self, name: str):
        """The named mesh for the current step (zero-copy wrapped)."""

    def get_mesh_metadata(self, name: str):
        """Structure/residency of the named mesh, without touching data.

        Back-ends use this to plan placement and movement (which arrays
        exist, where they live) before requesting anything.
        """
        from repro.svtk.metadata import metadata_for

        return metadata_for(self.get_mesh(name), name)

    def release_data(self) -> None:
        """Drop per-step references (no-op by default)."""


class TableDataAdaptor(DataAdaptor):
    """A data adaptor over in-memory tables (the common particle case).

    The simulation updates the tables it registered (or re-registers new
    ones) each step; back-ends read them through the data-model access
    APIs, which handle any needed movement.
    """

    def __init__(
        self,
        tables: Mapping[str, TableData] | None = None,
        comm: Communicator | None = None,
    ):
        super().__init__(comm)
        self._tables: dict[str, TableData] = dict(tables or {})

    def set_table(self, name: str, table: TableData) -> None:
        self._tables[str(name)] = table

    def get_mesh_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def get_mesh(self, name: str) -> TableData:
        try:
            return self._tables[name]
        except KeyError:
            raise ExecutionError(
                f"data adaptor has no mesh {name!r}; available: "
                f"{sorted(self._tables)}"
            ) from None

    def release_data(self) -> None:
        self._tables.clear()
