"""In situ placement: manual and automatic device selection.

Implements the paper's Section 3 placement control: "we implemented
means for both manual explicit device selection and automatic device
selection.  Automatic device selection uses a number of run time
provided control parameters along with the process's MPI rank and the
number of on node devices to select a device to execute on according
to the following rule:

    d = (r mod n_u * s + d_0) mod n_a                            (1)

where: d is the assigned device; r is the MPI rank of the process
making the query; n_u is the number of devices to use per node; s is
the stride, d_0 is the offset, and n_a is the total number of devices
available on the node.  r and n_a are initialized from system queries,
while n_u, s, and d_0 can optionally be specified by the user.  By
default, n_u = n_a, s = 1, and d_0 = 0."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlacementError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hw.node import num_devices

__all__ = ["PlacementMode", "DevicePlacement", "select_device", "reaim"]


def select_device(
    rank: int,
    n_available: int | None = None,
    n_use: int | None = None,
    stride: int = 1,
    offset: int = 0,
) -> int:
    """Automatic device selection — Eq. 1 of the paper.

    ``rank`` and ``n_available`` come from system queries (``n_available``
    defaults to the current node's device count); ``n_use``, ``stride``,
    and ``offset`` are the user-tunable control parameters with defaults
    ``n_use = n_available``, ``stride = 1``, ``offset = 0``.

    ``stride`` must be >= 1: a zero stride would silently collapse all
    ranks onto ``offset``, and a negative stride walks the devices
    backwards in a surprising order — both are config errors, not
    placements.  A negative ``offset`` is allowed and wraps modulo
    ``n_available`` (Python's ``%`` is non-negative for positive
    moduli), so ``offset=-1`` aims at the node's last device.
    """
    if n_available is None:
        n_available = num_devices()
    if n_available < 1:
        raise PlacementError("no devices available on this node")
    if n_use is None:
        n_use = n_available
    if n_use < 1:
        raise PlacementError(f"n_use must be >= 1, got {n_use}")
    if stride < 1:
        raise PlacementError(f"stride must be >= 1, got {stride}")
    if rank < 0:
        raise PlacementError(f"rank must be >= 0, got {rank}")
    # Eq. 1 with C precedence: ((r % n_u) * s + d_0) % n_a.
    return (rank % n_use * stride + offset) % n_available


def reaim(
    targets: "list[int] | tuple[int, ...] | set[int]",
    n_available: int | None = None,
) -> "DevicePlacement":
    """Translate a target device set back into Eq. 1 parameters.

    Coordination (the cluster placement governor) decides *which*
    devices a node's ranks should occupy; ``reaim`` expresses that
    decision as an automatic placement — ``(n_use, stride, offset)``
    such that Eq. 1's rank image ``{(i*s + d_0) mod n_a : i < n_u}``
    lies entirely within ``targets`` — so a re-aim stays inside the
    paper's placement mechanism instead of bypassing it.

    Among the candidates the choice maximizes coverage (largest
    ``n_use``), then prefers the smallest stride, then the smallest
    offset: a deterministic rule every rank reaches independently from
    the same target set, which is what makes a coordinated re-aim
    node-consistent.  Target sets that no single arithmetic
    progression covers (e.g. ``{0, 1, 3}`` of 4) degrade gracefully to
    the largest coverable subset; a singleton always works
    (``n_use=1, stride=1, offset=d``).
    """
    if n_available is None:
        n_available = num_devices()
    if n_available < 1:
        raise PlacementError("no devices available on this node")
    wanted = sorted({int(d) for d in targets})
    if not wanted:
        raise PlacementError("reaim needs at least one target device")
    for d in wanted:
        if not 0 <= d < n_available:
            raise PlacementError(
                f"target device {d} outside [0, {n_available})"
            )
    target_set = set(wanted)
    best: tuple[int, int, int] | None = None  # (-n_use, stride, offset)
    for stride in range(1, n_available + 1):
        for offset in wanted:
            covered: set[int] = set()
            for i in range(n_available):
                d = (i * stride + offset) % n_available
                if d in covered or d not in target_set:
                    break
                covered.add(d)
            if not covered:
                continue
            key = (-len(covered), stride, offset)
            if best is None or key < best:
                best = key
    assert best is not None  # offset in wanted always yields n_use >= 1
    return DevicePlacement.auto(
        n_use=-best[0], stride=best[1], offset=best[2]
    )


class PlacementMode(enum.Enum):
    """Where the in situ code runs."""

    HOST = "host"       # analysis on the CPU
    AUTO = "auto"       # device chosen by Eq. 1
    MANUAL = "manual"   # device given explicitly

    @classmethod
    def parse(cls, text: str) -> "PlacementMode":
        key = str(text).strip().lower()
        for mode in cls:
            if mode.value == key:
                return mode
        raise PlacementError(
            f"unknown placement {text!r}; supported: {[m.value for m in cls]}"
        )


@dataclass(frozen=True)
class DevicePlacement:
    """A resolved-on-demand placement policy.

    ``resolve(rank)`` answers "on which device does this rank's in situ
    code run?" — ``HOST_DEVICE_ID`` for host placement.
    """

    mode: PlacementMode = PlacementMode.AUTO
    device_id: int = 0          # MANUAL only
    n_use: int | None = None    # AUTO: devices to use per node (n_u)
    stride: int = 1             # AUTO: s
    offset: int = 0             # AUTO: d_0

    def __post_init__(self):
        if self.mode is PlacementMode.MANUAL and self.device_id < HOST_DEVICE_ID:
            raise PlacementError(f"invalid manual device id: {self.device_id}")
        if self.n_use is not None and self.n_use < 1:
            raise PlacementError(f"n_use must be >= 1, got {self.n_use}")
        if self.stride < 1:
            raise PlacementError(f"stride must be >= 1, got {self.stride}")

    @classmethod
    def host(cls) -> "DevicePlacement":
        return cls(mode=PlacementMode.HOST)

    @classmethod
    def manual(cls, device_id: int) -> "DevicePlacement":
        return cls(mode=PlacementMode.MANUAL, device_id=int(device_id))

    @classmethod
    def auto(cls, n_use: int | None = None, stride: int = 1, offset: int = 0) -> "DevicePlacement":
        return cls(mode=PlacementMode.AUTO, n_use=n_use, stride=stride, offset=offset)

    def resolve(self, rank: int, n_available: int | None = None) -> int:
        """The device this rank's analysis executes on (-1 = host)."""
        if self.mode is PlacementMode.HOST:
            return HOST_DEVICE_ID
        if self.mode is PlacementMode.MANUAL:
            if n_available is None:
                n_available = num_devices()
            if self.device_id >= n_available:
                raise PlacementError(
                    f"manual device {self.device_id} does not exist "
                    f"(node has {n_available})"
                )
            return self.device_id
        return select_device(
            rank,
            n_available=n_available,
            n_use=self.n_use,
            stride=self.stride,
            offset=self.offset,
        )
