"""The SENSEI bridge: the single instrumentation point for simulations.

A simulation instruments itself once::

    bridge = Bridge()
    bridge.initialize(comm, analyses=[...])      # or from XML
    ...
    bridge.execute(data_adaptor)                 # each step
    ...
    bridge.finalize()

and gains run-time switching between any number of analysis back-ends.
The bridge also keeps per-step apparent-cost records so harness code
can produce the paper's Figure 3 decomposition without instrumenting
the simulation further.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ExecutionError
from repro.hamr.runtime import current_clock
from repro.mpi.comm import Communicator, SelfCommunicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor

__all__ = ["Bridge"]


class Bridge:
    """Couples one simulation to a set of analysis back-ends."""

    def __init__(self):
        self._analyses: list[AnalysisAdaptor] = []
        self._comm: Communicator = SelfCommunicator()
        self._initialized = False
        self._finalized = False
        self._control = None
        #: Apparent in situ cost per executed step (simulated seconds).
        self.step_costs: list[float] = []

    def attach_control(self, plane) -> None:
        """Attach a :class:`repro.control.ControlPlane` to this bridge.

        Once attached, every ``execute`` feeds the plane one
        observation (solver time since the last step, in situ busy
        time, apparent cost, payload size) and the plane's governors
        may retune the analyses' execution method and placement.  With
        no plane attached this bridge's behavior is bit-identical to
        the static configuration.
        """
        self._control = plane

    @property
    def analyses(self) -> tuple[AnalysisAdaptor, ...]:
        return tuple(self._analyses)

    @property
    def control_plane(self):
        """The attached control plane, or None (reporting access)."""
        return self._control

    def add_analysis(self, analysis: AnalysisAdaptor) -> None:
        """Register a back-end; allowed before or after ``initialize``."""
        self._analyses.append(analysis)
        if self._initialized:
            analysis.initialize(self._comm)

    def initialize(
        self,
        comm: Communicator | None = None,
        analyses: Sequence[AnalysisAdaptor] | Iterable[AnalysisAdaptor] = (),
    ) -> None:
        """Bind the communicator and initialize all back-ends.

        Collective: every rank must call with its communicator endpoint.
        """
        if self._initialized:
            raise ExecutionError("bridge already initialized")
        self._comm = comm if comm is not None else SelfCommunicator()
        for a in analyses:
            self._analyses.append(a)
        for a in self._analyses:
            a.initialize(self._comm)
        self._initialized = True

    def execute(self, data: DataAdaptor) -> bool:
        """Run every back-end for the current step; returns True to continue.

        (SENSEI back-ends can vote to stop a simulation; none of the
        reproduced back-ends do, but the convention is preserved.)
        """
        if not self._initialized:
            self.initialize(data.get_comm())
        if self._finalized:
            raise ExecutionError("bridge already finalized")
        clock = current_clock()
        t0 = clock.now
        ok = True
        for a in self._analyses:
            ok = bool(a.execute(data)) and ok
        apparent = clock.now - t0
        self.step_costs.append(apparent)
        if self._control is not None:
            self._control.observe_bridge_step(
                self, data, t_start=t0, apparent=apparent
            )
        return ok

    def finalize(self) -> None:
        """Finalize all back-ends (drains asynchronous work)."""
        if self._finalized:
            return
        for a in self._analyses:
            a.finalize()
        self._finalized = True

    # -- reporting ---------------------------------------------------------------
    @property
    def total_apparent_time(self) -> float:
        """Total simulated time the simulation spent blocked on in situ."""
        return sum(self.step_costs)

    @property
    def total_actual_time(self) -> float:
        """Total simulated time spent inside analyses across back-ends."""
        return sum(a.total_actual_time for a in self._analyses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bridge(analyses={[a.name for a in self._analyses]})"
