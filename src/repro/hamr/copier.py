"""The data-movement engine.

Moves bytes between memory spaces on a node, charging the simulated
link costs from :class:`~repro.hw.spec.LinkSpec` and preserving
stream-ordering semantics: a copy may not begin before its source is
ready, and its completion gates consumers that synchronize on either
side.

Same-space transfers are *deep copies* (read + write through the local
memory system) — the operation the paper's asynchronous execution
method performs before launching the in situ thread.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError
from repro.hamr.allocator import (
    HOST_DEVICE_ID,
    Allocator,
    PMKind,
    default_allocator_for,
)
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock
from repro.hamr.stream import Stream, StreamMode, copy_stream, default_stream
from repro.hw.clock import EventCategory, SimClock
from repro.hw.node import get_node

__all__ = ["transfer", "copy_into", "transfer_duration"]


def transfer_duration(nbytes: int, src_device: int, dst_device: int, pinned: bool = False) -> float:
    """Simulated duration of moving ``nbytes`` between two spaces.

    Same-space "moves" are deep copies through local memory; the cost is
    a read plus a write at the space's bandwidth.
    """
    node = get_node()
    if src_device == dst_device:
        resource = node.resource(src_device)
        bw = (
            resource.spec.mem_bandwidth
            if hasattr(resource.spec, "mem_bandwidth")
            else node.spec.host.mem_bandwidth
        )
        return node.spec.link.latency + 2.0 * int(nbytes) / bw
    return node.transfer_time(nbytes, src_device, dst_device, pinned=pinned)


def transfer(
    src: Buffer,
    device_id: int,
    pm: PMKind = PMKind.HOST,
    allocator: Allocator | None = None,
    stream: Stream | None = None,
    mode: StreamMode | None = None,
    clock: SimClock | None = None,
    name: str = "",
) -> Buffer:
    """Deep copy ``src`` into a new buffer in the requested space.

    The new buffer is allocated with ``allocator`` (default: the natural
    allocator for ``pm`` at the destination).  The copy is ordered after
    any in-flight work on ``src``; in ``ASYNC`` mode the call returns
    while the move is in progress and both buffers carry the completion
    as a pending event.
    """
    clock = clock if clock is not None else current_clock()
    mode = mode if mode is not None else src.stream_mode
    if allocator is None:
        allocator = default_allocator_for(pm, device_id)
    if stream is None:
        # Order the move where an async memcpy would be ordered: on the
        # source device's dedicated copy stream (the DMA-engine lane).
        # Not the node-wide host stream — its shared cursor would
        # serialize unrelated ranks' D2H staging in wall-clock arrival
        # order — and not the device's compute stream, whose later
        # kernels must overlap the copy.  ``after`` below still orders
        # the copy behind the source's in-flight producer.  Any
        # device-resident destination keeps the destination device's
        # default stream (the allocation must be ordered there).
        to_host = (
            device_id == HOST_DEVICE_ID
            or (allocator is not None and allocator.is_host_resident)
        )
        if to_host and not src.on_host:
            stream = copy_stream(src.device_id)
        else:
            stream = default_stream(device_id)

    src_loc = HOST_DEVICE_ID if src.on_host else src.device_id
    dst = Buffer.allocate(
        src.size,
        src.dtype,
        allocator=allocator,
        device_id=device_id if not allocator.is_host_resident else HOST_DEVICE_ID,
        stream=stream,
        stream_mode=mode,
        name=name or f"copy-of-{src.name}",
        clock=clock,
    )
    dst_loc = HOST_DEVICE_ID if dst.on_host else dst.device_id
    # The movement engine sits below the view layer; it is the code
    # that makes everyone else's access legal.
    np.copyto(dst.data, src.data)  # lint: disable=HL001

    pinned = src.allocator.is_pinned_host or dst.allocator.is_pinned_host
    dur = transfer_duration(src.nbytes, src_loc, dst_loc, pinned=pinned)
    ev = stream.enqueue(
        clock,
        dur,
        name=f"copy {src.name}->{dst.name}",
        category=EventCategory.COPY,
        mode=mode,
        after=max(src.ready_at, dst.ready_at),
    )
    src.mark_pending(ev)
    dst.mark_pending(ev)
    return dst


def copy_into(
    src: Buffer,
    dst: Buffer,
    stream: Stream | None = None,
    mode: StreamMode | None = None,
    clock: SimClock | None = None,
) -> None:
    """Copy ``src`` contents into an existing ``dst`` buffer."""
    if src.size != dst.size:
        raise ShapeMismatchError(
            f"copy_into size mismatch: src={src.size}, dst={dst.size}"
        )
    clock = clock if clock is not None else current_clock()
    mode = mode if mode is not None else dst.stream_mode
    if stream is None:
        stream = dst.stream
    # Movement engine: below the view layer (see transfer above).
    np.copyto(dst.data, src.data.astype(dst.dtype, copy=False))  # lint: disable=HL001

    src_loc = HOST_DEVICE_ID if src.on_host else src.device_id
    dst_loc = HOST_DEVICE_ID if dst.on_host else dst.device_id
    pinned = src.allocator.is_pinned_host or dst.allocator.is_pinned_host
    dur = transfer_duration(src.nbytes, src_loc, dst_loc, pinned=pinned)
    ev = stream.enqueue(
        clock,
        dur,
        name=f"copy {src.name}->{dst.name}",
        category=EventCategory.COPY,
        mode=mode,
        after=max(src.ready_at, dst.ready_at),
    )
    src.mark_pending(ev)
    dst.mark_pending(ev)
