"""Location-tagged, stream-ordered managed allocations.

A :class:`Buffer` is the simulated equivalent of a HAMR ``buffer<T>``:
a contiguous array of elements living either in host memory or on one
virtual device, managed by a specific :class:`~repro.hamr.allocator.Allocator`,
with operations ordered on a :class:`~repro.hamr.stream.Stream` and an
explicit synchronous/asynchronous completion mode.

Storage is a numpy array tagged with its location; the tag — not the
bytes — is what determines legality and cost of access, mirroring how a
device pointer is just a pointer you must not dereference from the
wrong side of the bus.  Direct access to :attr:`Buffer.data` from code
"running" elsewhere is a correctness bug in real life; here it is
permitted mechanically but every supported path goes through the access
APIs in :mod:`repro.hamr.view`, which charge the right simulated costs.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.errors import AllocationError, StreamError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator
from repro.hamr.runtime import current_clock, get_active_device
from repro.hamr.stream import Stream, StreamMode, default_stream
from repro.hw.clock import EventCategory, SimClock, TimedEvent
from repro.hw.node import get_node

__all__ = ["Buffer"]


class Buffer:
    """One managed allocation.  Construct via :meth:`allocate` or :meth:`wrap`."""

    def __init__(
        self,
        data: np.ndarray,
        allocator: Allocator,
        device_id: int,
        stream: Stream,
        stream_mode: StreamMode,
        owns_memory: bool,
        name: str = "",
        deleter: Callable[[], None] | None = None,
        resource=None,
    ):
        if data.ndim != 1:
            data = np.ascontiguousarray(data).reshape(-1)
        self._data = data
        self.allocator = allocator
        self.device_id = int(device_id)
        self.stream = stream
        self.stream_mode = stream_mode
        self.name = name or "buffer"
        self._owns_memory = owns_memory
        self._deleter = deleter
        self._freed = False
        self._ready_at = 0.0
        self._lock = threading.Lock()
        # The compute resource this allocation belongs to.  Captured at
        # construction: memory must be returned to the device it came
        # from, even if a different node is current when we are freed.
        if resource is None:
            resource = get_node().resource(
                HOST_DEVICE_ID if allocator.is_host_resident else self.device_id
            )
        self._resource = resource

    # -- constructors ---------------------------------------------------------
    @classmethod
    def allocate(
        cls,
        size: int,
        dtype: np.dtype | type = np.float64,
        allocator: Allocator = Allocator.MALLOC,
        device_id: int | None = None,
        stream: Stream | None = None,
        stream_mode: StreamMode = StreamMode.SYNC,
        name: str = "",
        clock: SimClock | None = None,
    ) -> "Buffer":
        """Allocate ``size`` elements of ``dtype`` with ``allocator``.

        Device allocators target the thread's active device unless
        ``device_id`` is given ("memory is allocated on the currently
        active device" — paper Section 2).  Asynchronous stream modes
        return immediately; the allocation is ready when the stream
        reaches it.
        """
        size = int(size)
        if size < 0:
            raise AllocationError(
                f"negative size: {size}",
                details={
                    "buffer": name or "alloc",
                    "device_id": device_id,
                    "stream_mode": stream_mode.value,
                },
            )
        if device_id is None:
            device_id = (
                HOST_DEVICE_ID if allocator.is_host_resident else get_active_device()
            )
        allocator.validate_device(device_id)
        node = get_node()
        # Pinned-host and UVA memory is accounted where it physically lives.
        resource = node.resource(HOST_DEVICE_ID if allocator.is_host_resident else device_id)
        clock = clock if clock is not None else current_clock()
        if stream is None:
            stream = default_stream(device_id)
        elif stream.device_id not in (device_id, HOST_DEVICE_ID) and not allocator.is_host_resident:
            raise StreamError(
                f"stream {stream.name} targets device {stream.device_id}, "
                f"cannot order allocation on device {device_id}",
                details={
                    "buffer": name or "alloc",
                    "device_id": device_id,
                    "stream": stream.name,
                    "stream_mode": stream_mode.value,
                },
            )

        data = np.empty(size, dtype=dtype)
        if allocator.is_async:
            # Stream-ordered allocators are pool allocators: a freed
            # block of the same size is reused at pointer-bump cost.
            from repro.hamr.pool import POOL_HIT_COST, pool_for

            hit = pool_for(resource).acquire(data.nbytes)
            dur = (
                POOL_HIT_COST
                if hit
                else resource.alloc_time(data.nbytes, asynchronous=True)
            )
        else:
            resource.claim_memory(data.nbytes)
            dur = resource.alloc_time(data.nbytes, asynchronous=False)
        buf = cls(
            data,
            allocator,
            device_id,
            stream,
            stream_mode,
            owns_memory=True,
            name=name or f"alloc[{size}x{np.dtype(dtype).name}]",
            resource=resource,
        )
        ev = stream.enqueue(
            clock,
            dur,
            name=f"alloc {buf.name}",
            category=EventCategory.ALLOC,
            mode=stream_mode,
        )
        buf.mark_pending(ev)
        return buf

    @classmethod
    def wrap(
        cls,
        data: np.ndarray,
        allocator: Allocator,
        device_id: int | None = None,
        stream: Stream | None = None,
        stream_mode: StreamMode = StreamMode.SYNC,
        owner: object = None,
        deleter: Callable[[], None] | None = None,
        name: str = "",
    ) -> "Buffer":
        """Zero-copy construct around externally allocated memory.

        This is the transfer path the simulation uses to hand its arrays
        to SENSEI (paper Listing 1): no bytes move, and the necessary
        extra information — allocator, device ordinal, stream, stream
        mode — is captured alongside the pointer.  ``owner`` keeps the
        external owner alive (the smart-pointer coordination from the
        listing); ``deleter`` is invoked on :meth:`free` for raw-pointer
        hand-offs where the user manages the life cycle.
        """
        data = np.asarray(data)
        if device_id is None:
            device_id = (
                HOST_DEVICE_ID if allocator.is_host_resident else get_active_device()
            )
        allocator.validate_device(device_id)
        get_node().resource(HOST_DEVICE_ID if allocator.is_host_resident else device_id)
        if stream is None:
            stream = default_stream(device_id)
        buf = cls(
            data,
            allocator,
            int(device_id),
            stream,
            stream_mode,
            owns_memory=False,
            name=name or "wrapped",
            deleter=deleter,
        )
        buf._owner = owner  # keep-alive reference
        return buf

    # -- state ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Direct access to the raw storage (paper's ``GetData()``).

        Only correct when the caller already executes where the data
        lives and has synchronized; the location/PM-agnostic path is
        :func:`repro.hamr.view.accessible_view`.
        """
        if self._freed:
            raise AllocationError(
                f"buffer {self.name} was freed",
                details={
                    "buffer": self.name,
                    "device_id": self.device_id,
                    "stream_mode": self.stream_mode.value,
                },
            )
        return self._data

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def on_host(self) -> bool:
        return self.allocator.is_host_resident

    @property
    def freed(self) -> bool:
        return self._freed

    @property
    def ready_at(self) -> float:
        """Simulated time at which the contents are valid."""
        with self._lock:
            return self._ready_at

    def mark_pending(self, event: TimedEvent) -> None:
        """Record that ``event`` must complete before the contents are valid."""
        with self._lock:
            self._ready_at = max(self._ready_at, event.end)

    def synchronize(self, clock: SimClock | None = None) -> float:
        """Block the issuing clock until in-flight operations complete.

        "Make sure the data in flight, if it was moved, has arrived"
        (paper Listing 3).
        """
        clock = clock if clock is not None else current_clock()
        with self._lock:
            t = self._ready_at
        return clock.wait_for(max(t, 0.0))

    def host_accessible(self) -> bool:
        """True if the bytes can be read from the host without a move."""
        return self.on_host or self.allocator.is_uva

    def device_accessible(self, device_id: int) -> bool:
        """True if the bytes can be read from ``device_id`` without a move."""
        if device_id == HOST_DEVICE_ID:
            return self.host_accessible()
        return (
            self.device_id == device_id and not self.on_host
        ) or self.allocator.is_uva or self.allocator.is_pinned_host

    # -- mutation ------------------------------------------------------------------
    def fill(self, value: float, clock: SimClock | None = None) -> TimedEvent:
        """Set every element to ``value`` (device memset / host fill)."""
        clock = clock if clock is not None else current_clock()
        resource = self._resource
        self._data.fill(value)
        ev = self.stream.enqueue(
            clock,
            resource.memset_time(self.nbytes),
            name=f"fill {self.name}",
            category=EventCategory.COMPUTE,
            mode=self.stream_mode,
        )
        self.mark_pending(ev)
        return ev

    def free(self, clock: SimClock | None = None) -> None:
        """Release the allocation (to the resource it came from).  Idempotent."""
        if self._freed:
            return
        clock = clock if clock is not None else current_clock()
        resource = self._resource
        if self._owns_memory:
            if self.allocator.is_async:
                # Back to the stream-ordered pool: the footprint stays
                # on the device until the pool is trimmed.
                from repro.hamr.pool import pool_for

                pool_for(resource).release(self.nbytes)
            else:
                resource.release_memory(self.nbytes)
            self.stream.enqueue(
                clock,
                resource.free_time(asynchronous=self.allocator.is_async),
                name=f"free {self.name}",
                category=EventCategory.FREE,
                mode=self.stream_mode,
            )
        if self._deleter is not None:
            self._deleter()
            self._deleter = None
        self._freed = True

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loc = "host" if self.on_host else f"dev{self.device_id}"
        return (
            f"Buffer({self.name!r}, n={self.size}, dtype={self.dtype}, "
            f"alloc={self.allocator.name}, loc={loc})"
        )
