"""Thread-local runtime context: current clock and active device.

Two pieces of per-thread state mirror how real device runtimes behave:

- the **current clock** — each execution context (an MPI rank's main
  thread, or an asynchronous in situ thread) owns a
  :class:`~repro.hw.clock.SimClock` that tracks its simulated time.
  Library calls read it implicitly, the same way real code implicitly
  spends wall-clock time;
- the **active device** — the paper's data model allocates "on the
  currently active device", matching ``cudaSetDevice`` /
  ``omp_set_default_device`` semantics.  :func:`set_active_device` and
  the :func:`active_device` context manager reproduce that.
"""

from __future__ import annotations

import contextlib
import threading

from repro.errors import LocationError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hw.clock import SimClock
from repro.hw.node import get_node

__all__ = [
    "current_clock",
    "set_current_clock",
    "use_clock",
    "get_active_device",
    "set_active_device",
    "active_device",
]

_tls = threading.local()


def current_clock() -> SimClock:
    """The calling thread's simulated clock (created lazily)."""
    clk = getattr(_tls, "clock", None)
    if clk is None:
        clk = SimClock(name=f"clock-{threading.get_ident()}")
        _tls.clock = clk
    return clk


def set_current_clock(clock: SimClock) -> SimClock | None:
    """Install ``clock`` for this thread; returns the previous clock."""
    prev = getattr(_tls, "clock", None)
    _tls.clock = clock
    return prev


@contextlib.contextmanager
def use_clock(clock: SimClock):
    """Run a block with ``clock`` as the thread's simulated clock."""
    prev = set_current_clock(clock)
    try:
        yield clock
    finally:
        _tls.clock = prev


def get_active_device() -> int:
    """The calling thread's active device ordinal (0 by default).

    Returns :data:`~repro.hamr.allocator.HOST_DEVICE_ID` only if the
    thread explicitly selected the host.
    """
    return getattr(_tls, "active_device", 0)


def set_active_device(device_id: int) -> int:
    """Select the active device (``cudaSetDevice`` equivalent).

    ``HOST_DEVICE_ID`` (-1) selects the host.  Returns the previously
    active device.  Raises :class:`~repro.errors.LocationError` for a
    nonexistent device on the current node.
    """
    device_id = int(device_id)
    if device_id != HOST_DEVICE_ID:
        get_node().device(device_id)  # validates existence
    prev = get_active_device()
    _tls.active_device = device_id
    return prev


@contextlib.contextmanager
def active_device(device_id: int):
    """Run a block with ``device_id`` active, restoring the previous one."""
    prev = set_active_device(device_id)
    try:
        yield device_id
    finally:
        _tls.active_device = prev
