"""The ``svtkAllocator`` enumeration and its capability queries.

An allocator value selects the programming model (PM), and the specific
method within that PM, used to allocate and subsequently manage a piece
of memory.  The set mirrors the paper's Section 2: "SENSEI currently
supports OpenMP offload, CUDA, and HIP allocators as well as host only
allocators using malloc, and new.  The CUDA and HIP allocators come in
synchronous and asynchronous variants, variants that allocate
universally addressable memory, as well as variants for allocating page
locked memory."
"""

from __future__ import annotations

import enum

from repro.errors import InvalidAllocatorError

__all__ = ["PMKind", "Allocator", "HOST_DEVICE_ID", "default_allocator_for"]


#: Device ordinal used to denote host memory throughout the package.
HOST_DEVICE_ID = -1


class PMKind(enum.Enum):
    """The programming models the data model interoperates between.

    CUDA, HIP, OpenMP offload, and host are what the paper ships;
    SYCL and Kokkos are the additions its Section 5 plans ("We will
    also add support for SYCL as well as third party PMs such as
    Kokkos"), implemented here.
    """

    HOST = "host"
    CUDA = "cuda"
    HIP = "hip"
    OPENMP = "openmp"
    SYCL = "sycl"
    KOKKOS = "kokkos"

    @property
    def is_device_pm(self) -> bool:
        return self is not PMKind.HOST


class Allocator(enum.Enum):
    """Which PM, and which method within the PM, manages an allocation."""

    # Host-only allocators.
    MALLOC = "malloc"
    NEW = "new"

    # CUDA PM.
    CUDA = "cuda"                      # cudaMalloc
    CUDA_ASYNC = "cuda_async"          # cudaMallocAsync (stream ordered)
    CUDA_UVA = "cuda_uva"              # cudaMallocManaged (universally addressable)
    CUDA_HOST = "cuda_host"            # cudaMallocHost (page-locked host)

    # HIP PM.
    HIP = "hip"
    HIP_ASYNC = "hip_async"
    HIP_UVA = "hip_uva"
    HIP_HOST = "hip_host"

    # OpenMP device offload (omp_target_alloc).
    OPENMP = "openmp"

    # SYCL unified shared memory (paper Section 5 future work).
    SYCL = "sycl"                      # sycl::malloc_device
    SYCL_SHARED = "sycl_shared"        # sycl::malloc_shared (migratable)
    SYCL_HOST = "sycl_host"            # sycl::malloc_host (device-visible host)

    # Kokkos memory spaces (paper Section 5 future work).
    KOKKOS = "kokkos"                  # Kokkos::kokkos_malloc<DeviceSpace>()

    # -- capability queries ---------------------------------------------------
    @property
    def pm_kind(self) -> PMKind:
        """The programming model that owns allocations of this kind."""
        return _PM_OF[self]

    @property
    def is_host_resident(self) -> bool:
        """True if allocations live in host memory (pinned ones included)."""
        return self in (
            Allocator.MALLOC,
            Allocator.NEW,
            Allocator.CUDA_HOST,
            Allocator.HIP_HOST,
            Allocator.SYCL_HOST,
        )

    @property
    def is_device_resident(self) -> bool:
        """True if allocations live in device memory."""
        return not self.is_host_resident

    @property
    def is_async(self) -> bool:
        """True for stream-ordered allocation variants."""
        return self in (Allocator.CUDA_ASYNC, Allocator.HIP_ASYNC)

    @property
    def is_uva(self) -> bool:
        """True for universally addressable (managed/unified) variants."""
        return self in (
            Allocator.CUDA_UVA,
            Allocator.HIP_UVA,
            Allocator.SYCL_SHARED,
        )

    @property
    def is_pinned_host(self) -> bool:
        """True for device-visible (page-locked) host variants."""
        return self in (
            Allocator.CUDA_HOST,
            Allocator.HIP_HOST,
            Allocator.SYCL_HOST,
        )

    def validate_device(self, device_id: int) -> None:
        """Raise unless ``device_id`` is legal for this allocator."""
        if self.is_host_resident:
            if device_id != HOST_DEVICE_ID:
                raise InvalidAllocatorError(
                    f"host allocator {self.name} cannot target device {device_id}"
                )
        else:
            if device_id < 0:
                raise InvalidAllocatorError(
                    f"device allocator {self.name} requires a device, "
                    f"got device_id={device_id}"
                )


_PM_OF = {
    Allocator.MALLOC: PMKind.HOST,
    Allocator.NEW: PMKind.HOST,
    Allocator.CUDA: PMKind.CUDA,
    Allocator.CUDA_ASYNC: PMKind.CUDA,
    Allocator.CUDA_UVA: PMKind.CUDA,
    Allocator.CUDA_HOST: PMKind.CUDA,
    Allocator.HIP: PMKind.HIP,
    Allocator.HIP_ASYNC: PMKind.HIP,
    Allocator.HIP_UVA: PMKind.HIP,
    Allocator.HIP_HOST: PMKind.HIP,
    Allocator.OPENMP: PMKind.OPENMP,
    Allocator.SYCL: PMKind.SYCL,
    Allocator.SYCL_SHARED: PMKind.SYCL,
    Allocator.SYCL_HOST: PMKind.SYCL,
    Allocator.KOKKOS: PMKind.KOKKOS,
}


def default_allocator_for(pm: PMKind, device_id: int) -> Allocator:
    """The allocator a PM-agnostic move targets for a given location.

    Host destinations use ``MALLOC``; device destinations use the
    requesting PM's plain device allocator (OpenMP has only one).
    """
    if device_id == HOST_DEVICE_ID:
        return Allocator.MALLOC
    if pm is PMKind.CUDA:
        return Allocator.CUDA
    if pm is PMKind.HIP:
        return Allocator.HIP
    if pm is PMKind.OPENMP:
        return Allocator.OPENMP
    if pm is PMKind.SYCL:
        return Allocator.SYCL
    if pm is PMKind.KOKKOS:
        return Allocator.KOKKOS
    raise InvalidAllocatorError(
        f"PM {pm} cannot allocate on device {device_id}; "
        "host PM allocations must target host memory"
    )
