"""Shared views — the ``std::shared_ptr`` returned by access APIs.

From the paper (Section 2): "A ``std::shared_ptr`` is returned from the
access API so that if a temporary were used it will automatically be
cleaned up when the ``std::shared_ptr`` goes out of scope."

:class:`SharedView` reproduces those semantics with Python lifetime
management: if satisfying the access request required allocating a
temporary and moving the data, the temporary is freed when the view is
released (explicitly, by ``with``-block exit, or by garbage
collection).  If the request was satisfiable in place, the view is a
zero-cost alias of the original storage.
"""

from __future__ import annotations

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.copier import transfer
from repro.hamr.runtime import current_clock
from repro.hamr.stream import Stream, StreamMode
from repro.hw.clock import SimClock

import numpy as np

__all__ = ["SharedView", "accessible_view"]


class SharedView:
    """A possibly temporary, read-oriented view of a buffer's data.

    ``source`` may be ``None`` for views over plain host arrays (the
    host-only data-array baseline); such views are always in place.
    """

    def __init__(
        self,
        array: np.ndarray,
        source: Buffer | None = None,
        temporary: Buffer | None = None,
    ):
        self._array = array
        self._source = source
        self._temporary = temporary
        self._released = False

    def get(self) -> np.ndarray:
        """The underlying array (the paper's ``sp.get()`` raw pointer)."""
        if self._released:
            raise RuntimeError("view was released")
        return self._array

    @property
    def is_temporary(self) -> bool:
        """True if a move into a temporary was required."""
        return self._temporary is not None

    @property
    def buffer(self) -> Buffer | None:
        """The buffer actually backing the view (``None`` for plain arrays)."""
        return self._temporary if self._temporary is not None else self._source

    @property
    def ready_at(self) -> float:
        buf = self.buffer
        return 0.0 if buf is None else buf.ready_at

    def synchronize(self, clock: SimClock | None = None) -> float:
        """Wait until any in-flight move backing this view has arrived."""
        buf = self.buffer
        if buf is None:
            return (clock if clock is not None else current_clock()).now
        return buf.synchronize(clock)

    def release(self) -> None:
        """Free the temporary, if any.  Idempotent."""
        if self._released:
            return
        self._released = True
        if self._temporary is not None:
            self._temporary.free()
            self._temporary = None
        self._array = None  # type: ignore[assignment]

    def __enter__(self) -> "SharedView":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass

    def __len__(self) -> int:
        return 0 if self._released else int(self._array.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "temporary" if self.is_temporary else "in-place"
        src = self._source.name if self._source is not None else "<ndarray>"
        return f"SharedView({kind}, source={src!r})"


def accessible_view(
    buffer: Buffer,
    pm: PMKind,
    device_id: int,
    stream: Stream | None = None,
    mode: StreamMode | None = None,
    clock: SimClock | None = None,
) -> SharedView:
    """Location and PM agnostic read access (the HDA access API core).

    The caller specifies where (host or a device ordinal) and in which
    PM the data will be accessed.  If the managed data is already
    accessible there, no work is done and direct access is granted.
    Otherwise a temporary is allocated in the requested space, the data
    is moved (synchronously or asynchronously per ``mode``), and the
    returned view owns the temporary.

    Any PM can read raw memory resident in the right space — on
    single-address-space-per-device nodes, CUDA, HIP, and OpenMP device
    pointers are interchangeable — so PM interoperability reduces to
    *location* plus allocator bookkeeping, which is exactly how the
    temporary is allocated (with ``pm``'s own allocator).
    """
    clock = clock if clock is not None else current_clock()
    if buffer.device_accessible(device_id):
        return SharedView(buffer.data, buffer, temporary=None)
    tmp = transfer(
        buffer,
        device_id,
        pm=pm,
        stream=stream,
        mode=mode,
        clock=clock,
        name=f"view-of-{buffer.name}",
    )
    return SharedView(tmp.data, buffer, temporary=tmp)
