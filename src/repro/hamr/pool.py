"""Stream-ordered memory pools (``cudaMallocAsync`` semantics).

The asynchronous allocator variants the data model exposes
(``CUDA_ASYNC`` / ``HIP_ASYNC``) are *pool* allocators on real parts:
freed blocks return to a per-device pool instead of the OS/driver, and
subsequent same-size allocations are satisfied from the pool at a
fraction of a fresh allocation's cost.  The trade-off is footprint —
pooled memory still counts against the device (the OOM concern that
motivates zero-copy transfer), until the pool is trimmed.

:class:`MemoryPool` reproduces that behaviour on the simulated
substrate with size-bucketed free lists; the buffer layer consults the
pool for asynchronous allocators automatically.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.hw.device import ComputeResource
from repro.units import us

__all__ = ["MemoryPool", "pool_for", "reset_pools"]

#: Cost of servicing an allocation from the pool (pointer bump).
POOL_HIT_COST = us(1.0)


class MemoryPool:
    """A size-bucketed free-list pool bound to one compute resource.

    - ``acquire(nbytes)`` → True if served from the pool (no new device
      memory claimed), False if a fresh claim was made on the resource;
    - ``release(nbytes)`` returns a block to the pool: the bytes stay
      claimed on the resource (the footprint the paper worries about);
    - ``trim()`` returns pooled bytes to the device, like
      ``cudaMemPoolTrimTo(0)``.
    """

    def __init__(self, resource: ComputeResource):
        self.resource = resource
        self._buckets: dict[int, int] = defaultdict(int)  # nbytes -> count
        self._pooled_bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def pooled_bytes(self) -> int:
        """Bytes held by the pool (claimed on the device, not in use)."""
        with self._lock:
            return self._pooled_bytes

    def acquire(self, nbytes: int) -> bool:
        """Obtain a block; returns True on a pool hit.

        A miss claims fresh memory on the resource (which may raise
        :class:`~repro.errors.DeviceOutOfMemoryError` — pools do not
        magically create capacity).
        """
        nbytes = int(nbytes)
        with self._lock:
            if self._buckets.get(nbytes, 0) > 0:
                self._buckets[nbytes] -= 1
                self._pooled_bytes -= nbytes
                self.hits += 1
                return True
        self.resource.claim_memory(nbytes)
        with self._lock:
            self.misses += 1
        return False

    def release(self, nbytes: int) -> None:
        """Return a block to the pool (footprint unchanged)."""
        nbytes = int(nbytes)
        with self._lock:
            self._buckets[nbytes] += 1
            self._pooled_bytes += nbytes

    def trim(self) -> int:
        """Release all pooled blocks back to the device; returns bytes."""
        with self._lock:
            freed = self._pooled_bytes
            self._buckets.clear()
            self._pooled_bytes = 0
        if freed:
            self.resource.release_memory(freed)
        return freed

    def trim_above(self, watermark_bytes: int) -> int:
        """Trim pooled inventory down to ``watermark_bytes``; returns freed.

        The high-watermark variant of :meth:`trim`
        (``cudaMemPoolAttrReleaseThreshold`` semantics): largest
        buckets go first so the fewest blocks are evicted, and the pool
        keeps up to the watermark for future hits.  The control plane's
        pool governor drives this.
        """
        watermark_bytes = int(watermark_bytes)
        if watermark_bytes < 0:
            raise ValueError(
                f"watermark_bytes must be >= 0: {watermark_bytes}"
            )
        freed = 0
        with self._lock:
            for nbytes in sorted(self._buckets, reverse=True):
                while (
                    self._buckets[nbytes] > 0
                    and self._pooled_bytes > watermark_bytes
                ):
                    self._buckets[nbytes] -= 1
                    self._pooled_bytes -= nbytes
                    freed += nbytes
                if self._buckets[nbytes] == 0:
                    del self._buckets[nbytes]
        if freed:
            self.resource.release_memory(freed)
        return freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryPool({self.resource.name!r}, pooled={self.pooled_bytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_pools_lock = threading.Lock()
# Keyed by the resource itself (identity hash), NOT id(resource): an id
# holds no reference, so a collected resource's id can be reused by a
# new object, silently aliasing it onto the dead resource's pool.  The
# strong reference pins registered resources for the registry's
# lifetime; reset_pools() is the release valve.
_pools: dict[ComputeResource, MemoryPool] = {}


def pool_for(resource: ComputeResource) -> MemoryPool:
    """The (process-wide) pool bound to ``resource``."""
    with _pools_lock:
        pool = _pools.get(resource)
        if pool is None:
            pool = MemoryPool(resource)
            _pools[resource] = pool
        return pool


def reset_pools() -> None:
    """Drop all pools (test helper)."""
    with _pools_lock:
        _pools.clear()
