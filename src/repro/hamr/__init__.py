"""HAMR — the Heterogeneous Accelerator Memory Resource (simulated).

This package reimplements, on the virtual hardware of :mod:`repro.hw`,
the memory-management library the paper's data model extensions are
built on (Loring, "HAMR the Heterogeneous Accelerator Memory Resource",
2022).  It provides:

- :class:`~repro.hamr.allocator.Allocator` — the ``svtkAllocator``
  enumeration: which programming model, and which method within it,
  allocates and manages the memory;
- :class:`~repro.hamr.stream.Stream` / ``StreamMode`` — the
  ``svtkStream`` abstraction over PM streams, with automatic conversion
  to and from native handles;
- :class:`~repro.hamr.buffer.Buffer` — a location-tagged, stream-ordered
  managed allocation; supports zero-copy wrapping of externally
  allocated memory with coordinated life-cycle management;
- :mod:`~repro.hamr.copier` — the data-movement engine used to satisfy
  location/PM-agnostic access requests;
- :class:`~repro.hamr.view.SharedView` — the ``std::shared_ptr``-like
  handle returned by access APIs, which cleans up temporaries
  automatically when it goes out of scope.
"""

from repro.hamr.allocator import Allocator, PMKind, HOST_DEVICE_ID
from repro.hamr.stream import Stream, StreamMode, default_stream
from repro.hamr.runtime import (
    current_clock,
    use_clock,
    set_active_device,
    get_active_device,
    active_device,
)
from repro.hamr.buffer import Buffer
from repro.hamr.copier import transfer, copy_into
from repro.hamr.view import SharedView, accessible_view

__all__ = [
    "Allocator",
    "PMKind",
    "HOST_DEVICE_ID",
    "Stream",
    "StreamMode",
    "default_stream",
    "current_clock",
    "use_clock",
    "set_active_device",
    "get_active_device",
    "active_device",
    "Buffer",
    "transfer",
    "copy_into",
    "SharedView",
    "accessible_view",
]
