"""The ``svtkStream`` abstraction over programming-model streams.

From the paper (Section 2): "svtkStream is a class that abstracts the
differences between PM streams.  It has automatic conversions to and
from PM native streams such that these can be used interchangeably.
The svtkStream is used for ordering operations and explicit
synchronization."

In the simulation a *native stream* is an opaque integer handle (what a
``cudaStream_t`` degrades to once you cannot dereference it) kept in a
per-PM registry so conversion round-trips preserve identity.  Each
stream owns a :class:`~repro.hw.clock.Timeline`: operations enqueued on
a stream execute in order, and independent streams may overlap — the
same guarantees real PM streams give.
"""

from __future__ import annotations

import enum
import itertools
import threading

from repro.errors import StreamError
from repro.hamr.allocator import HOST_DEVICE_ID, PMKind
from repro.hw.clock import EventCategory, SimClock, Timeline, TimedEvent

__all__ = ["StreamMode", "Stream", "default_stream", "copy_stream"]


class StreamMode(enum.Enum):
    """Synchronization mode for HDA operations (``svtkStreamMode``).

    In ``ASYNC`` mode API calls return immediately while the operation
    is in progress, making it possible to overlap allocation, data
    movement, and computation; the user adds synchronization points as
    needed.  In ``SYNC`` mode all operations complete before the API
    call returns.
    """

    SYNC = "sync"
    ASYNC = "async"


_handle_counter = itertools.count(1)
_registry_lock = threading.Lock()
# (pm, handle) -> Stream, so from_native/to_native round-trip.
_native_registry: dict[tuple[PMKind, int], "Stream"] = {}


class Stream:
    """An ordered queue of device (or host) operations."""

    def __init__(self, device_id: int = 0, name: str | None = None, pm: PMKind = PMKind.CUDA):
        self.device_id = int(device_id)
        self.pm = pm
        self._handle = next(_handle_counter)
        loc = "host" if self.device_id == HOST_DEVICE_ID else f"dev{self.device_id}"
        self.name = name if name is not None else f"stream{self._handle}@{loc}"
        self.timeline = Timeline(self.name)
        with _registry_lock:
            _native_registry[(self.pm, self._handle)] = self

    # -- native-handle interchange --------------------------------------------
    def to_native(self, pm: PMKind | None = None) -> int:
        """The PM-native handle for this stream.

        Streams are raw scheduling contexts; the same handle is meaningful
        to every device PM on the node (as CUDA/HIP streams are on
        single-vendor nodes), so ``pm`` is accepted for interface parity
        and interop bookkeeping only.
        """
        if pm is not None and pm is not self.pm:
            with _registry_lock:
                _native_registry[(pm, self._handle)] = self
        return self._handle

    @classmethod
    def from_native(cls, pm: PMKind, handle: int, device_id: int = 0) -> "Stream":
        """Wrap a PM-native stream handle (identity-preserving)."""
        with _registry_lock:
            existing = _native_registry.get((pm, int(handle)))
        if existing is not None:
            return existing
        # An externally created native stream we have not seen: adopt it.
        s = cls.__new__(cls)
        s.device_id = int(device_id)
        s.pm = pm
        s._handle = int(handle)
        s.name = f"native{handle}@{pm.value}"
        s.timeline = Timeline(s.name)
        with _registry_lock:
            _native_registry[(pm, int(handle))] = s
        return s

    # -- scheduling -------------------------------------------------------------
    def enqueue(
        self,
        clock: SimClock,
        duration: float,
        name: str = "",
        category: EventCategory = EventCategory.OTHER,
        mode: StreamMode = StreamMode.ASYNC,
        after: float | None = None,
    ) -> TimedEvent:
        """Schedule an operation of ``duration`` on this stream.

        ``after`` expresses a cross-stream dependency: the operation may
        not start before that simulated time.  In ``SYNC`` mode the
        issuing clock blocks until completion.
        """
        issue = clock.now
        if after is not None:
            issue = max(issue, float(after))
        ev = self.timeline.schedule(issue, duration, name=name, category=category)
        if mode is StreamMode.SYNC:
            clock.wait_event(ev)
        return ev

    def wait_event(self, event: TimedEvent) -> None:
        """Order all future work on this stream after ``event``.

        The ``cudaStreamWaitEvent`` pattern: a cross-stream dependency
        expressed without blocking the issuing host thread — only the
        *stream* waits.
        """
        self.timeline.delay_until(event.end)

    def synchronize(self, clock: SimClock) -> float:
        """Block the issuing clock until all enqueued work completes."""
        t = self.timeline.available_at
        clock.wait_for(t)
        self.timeline.schedule(clock.now, 0.0, name="synchronize", category=EventCategory.SYNC)
        return clock.now

    @property
    def available_at(self) -> float:
        return self.timeline.available_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.name!r}, device={self.device_id}, pm={self.pm.value})"


# Per-(device, thread-agnostic) default streams, like CUDA's stream 0.
_default_lock = threading.Lock()
_default_streams: dict[int, Stream] = {}


def default_stream(device_id: int = 0, pm: PMKind = PMKind.CUDA) -> Stream:
    """The process-wide default stream for ``device_id``.

    This is what the paper's listings call ``svtkStream()`` — the stream
    used when the caller does not manage one explicitly.
    """
    device_id = int(device_id)
    with _default_lock:
        s = _default_streams.get(device_id)
        if s is None:
            loc = "host" if device_id == HOST_DEVICE_ID else f"dev{device_id}"
            s = Stream(device_id=device_id, name=f"default@{loc}", pm=pm)
            _default_streams[device_id] = s
        return s


# Per-device dedicated copy streams (the DMA-engine lanes).
_copy_streams: dict[int, Stream] = {}


def copy_stream(device_id: int = 0, pm: PMKind = PMKind.CUDA) -> Stream:
    """The per-device dedicated copy stream for ``device_id``.

    Staging copies issued without an explicit stream order here — the
    copy-engine lane — rather than on the device's default compute
    stream (an async memcpy must not serialize subsequent kernels) and
    never on the node-wide host stream (whose shared cursor would
    couple unrelated ranks' simulated clocks in wall arrival order).
    """
    device_id = int(device_id)
    with _default_lock:
        s = _copy_streams.get(device_id)
        if s is None:
            loc = "host" if device_id == HOST_DEVICE_ID else f"dev{device_id}"
            s = Stream(device_id=device_id, name=f"copy@{loc}", pm=pm)
            _copy_streams[device_id] = s
        return s


def reset_default_streams() -> None:
    """Drop all default and copy streams (test helper)."""
    with _default_lock:
        _default_streams.clear()
        _copy_streams.clear()
