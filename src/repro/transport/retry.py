"""Sender-side retry: exponential backoff with jitter.

The policy separates two time bases on purpose:

- ``ack_timeout`` is *wall-clock* seconds — the stall guard that
  detects a peer that never serves.  Retransmit *scheduling* does not
  use it: the channel reports each frame's delivery verdict at send
  time (faults are injected sender-side from a seeded RNG), so lost
  chunks are retransmitted at deterministic points in the send
  sequence and retry counts are load-proof.  The guard fires only
  when a chunk that *was* delivered is never ACKed — a mute endpoint
  — and demotes it to the retry path so the budget still bounds the
  wait;
- ``backoff(attempt)`` is *simulated* seconds — the delay a real
  sender would insert before retransmitting, charged to the sender's
  :class:`~repro.hw.clock.SimClock` so fault recovery is visible on
  the simulated timeline (and absent from clean runs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import TransportError
from repro.units import us

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard delivery tries before giving up."""

    max_retries: int = 8
    ack_timeout: float = 0.05  # wall-clock stall guard per attempt
    backoff_base: float = us(50.0)  # simulated seconds, first retry
    backoff_factor: float = 2.0
    backoff_max: float = us(5000.0)
    jitter: float = 0.25  # +/- fraction applied to each backoff

    def __post_init__(self):
        if self.max_retries < 0:
            raise TransportError(f"max_retries must be >= 0: {self.max_retries}")
        if not 0.0 <= self.jitter < 1.0:
            raise TransportError(f"jitter must be in [0, 1): {self.jitter}")
        if self.backoff_factor < 1.0:
            raise TransportError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if self.ack_timeout <= 0:
            raise TransportError(f"ack_timeout must be > 0: {self.ack_timeout}")
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise TransportError(
                f"need 0 <= backoff_base <= backoff_max: "
                f"{self.backoff_base}/{self.backoff_max}"
            )

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        """Simulated delay before retransmission ``attempt`` (1-based).

        ``backoff_max`` caps the *jittered* delay: jitter is applied to
        the exponential curve first and the clamp last, so no draw can
        exceed the cap (clamping before jittering let upward jitter
        escape it).
        """
        if attempt < 1:
            raise TransportError(f"attempt is 1-based: {attempt}")
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return min(delay, self.backoff_max)
