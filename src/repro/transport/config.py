"""Transport configuration — the ``<transport .../>`` XML element.

Schema (all attributes optional; defaults shown)::

    <sensei>
      <transport compression="none" chunk_kib="64" max_inflight="8"
                 retries="8" ack_timeout="0.05" partitioner="block"
                 drop="0.0" duplicate="0.0" reorder="0.0"
                 corrupt="0.0" seed="0" pipelined="false"
                 congestion_kib="0" congestion_drop="0.0"/>
      <analysis .../>
    </sensei>

``drop``/``duplicate``/``reorder``/``corrupt`` are fault-injection
probabilities applied to the data direction only — they exist so a
configuration can rehearse lossy-fabric behaviour without code
changes.

``compression`` accepts any registered codec name, or ``"adaptive"``
to delegate the choice to the control plane's per-endpoint codec
governor (see :mod:`repro.control`): the sender starts uncompressed
and switches once the governor has measured the link bandwidth and
the achievable ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import ConfigError
from repro.transport.channel import FaultSpec
from repro.transport.partition import available_partitioners
from repro.transport.retry import RetryPolicy
from repro.transport.wire import DEFAULT_CHUNK_BYTES, available_codecs
from repro.units import KiB

__all__ = ["TransportConfig"]


@dataclass(frozen=True)
class TransportConfig:
    """Everything the transport plane needs for one run."""

    compression: str = "none"
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    max_inflight: int = 8
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    partitioner: str = "block"
    faults: FaultSpec = field(default_factory=FaultSpec)
    recv_timeout: float = 60.0  # wall-clock patience of a receiver
    #: Pipelined wire-cost model: the sender charges each chunk
    #: ``latency / in_flight + bytes / bandwidth``, so a deeper credit
    #: window amortizes link latency (and the flow governor has a real
    #: trade-off to optimize).  Off by default: the classic model
    #: charges every frame serially through the communicator.
    pipelined: bool = False

    def __post_init__(self):
        if (
            self.compression != "adaptive"
            and self.compression not in available_codecs()
        ):
            raise ConfigError(
                f"unknown codec {self.compression!r}; available: "
                f"{', '.join(available_codecs())} (or 'adaptive' to let "
                "the control plane's codec governor choose per endpoint)"
            )
        if self.partitioner not in available_partitioners():
            raise ConfigError(
                f"unknown partitioner {self.partitioner!r}; available: "
                f"{', '.join(available_partitioners())}"
            )
        if self.chunk_bytes < 1:
            raise ConfigError(f"chunk_bytes must be >= 1: {self.chunk_bytes}")
        if self.max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1: {self.max_inflight}")
        if self.recv_timeout <= 0:
            raise ConfigError(f"recv_timeout must be > 0: {self.recv_timeout}")

    @property
    def adaptive(self) -> bool:
        """True when codec selection is delegated to the control plane."""
        return self.compression == "adaptive"

    @property
    def initial_codec(self) -> str:
        """The codec a sender starts with.

        Adaptive runs start uncompressed — the cheap choice on a good
        link — and let the codec governor switch once it has measured
        the link and the achievable ratio.
        """
        return "none" if self.adaptive else self.compression

    def with_faults(self, **kwargs) -> "TransportConfig":
        """A copy with fault-injection fields overridden."""
        return replace(self, faults=replace(self.faults, **kwargs))

    @classmethod
    def from_xml_attrs(cls, attrs: Mapping[str, str]) -> "TransportConfig":
        """Build a config from a ``<transport>`` element's attributes."""
        attrs = dict(attrs)

        def _num(key: str, default, conv):
            raw = attrs.pop(key, None)
            if raw is None:
                return default
            try:
                return conv(raw)
            except ValueError:
                raise ConfigError(
                    f"<transport>: attribute {key!r} must be a "
                    f"{conv.__name__}, got {raw!r}"
                ) from None

        compression = attrs.pop("compression", "none")
        chunk_kib = _num("chunk_kib", None, float)
        chunk_bytes = (
            int(chunk_kib * KiB) if chunk_kib is not None
            else _num("chunk_bytes", DEFAULT_CHUNK_BYTES, int)
        )
        max_inflight = _num("max_inflight", 8, int)
        retry = RetryPolicy(
            max_retries=_num("retries", 8, int),
            ack_timeout=_num("ack_timeout", 0.05, float),
        )
        faults = FaultSpec(
            drop=_num("drop", 0.0, float),
            duplicate=_num("duplicate", 0.0, float),
            reorder=_num("reorder", 0.0, float),
            corrupt=_num("corrupt", 0.0, float),
            seed=_num("seed", 0, int),
            congestion_bytes=int(_num("congestion_kib", 0.0, float) * KiB),
            congestion_drop=_num("congestion_drop", 0.0, float),
        )
        partitioner = attrs.pop("partitioner", "block")
        recv_timeout = _num("recv_timeout", 60.0, float)
        raw_pipelined = attrs.pop("pipelined", "false").strip().lower()
        if raw_pipelined not in ("true", "false", "1", "0"):
            raise ConfigError(
                f"<transport>: attribute 'pipelined' must be a boolean, "
                f"got {raw_pipelined!r}"
            )
        pipelined = raw_pipelined in ("true", "1")
        if attrs:
            raise ConfigError(
                f"<transport>: unknown attribute(s) {sorted(attrs)}"
            )
        return cls(
            compression=compression,
            chunk_bytes=chunk_bytes,
            max_inflight=max_inflight,
            retry=retry,
            partitioner=partitioner,
            faults=faults,
            recv_timeout=recv_timeout,
            pipelined=pipelined,
        )
