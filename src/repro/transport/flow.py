"""Credit-based flow control: a bounded in-flight window.

A sender must hold a credit for every un-ACKed chunk; when the window
is exhausted it stops transmitting and services ACKs instead.  That is
the backpressure that keeps a fast producer from queueing unboundedly
ahead of a slow endpoint — the mailbox never holds more than
``credits`` chunks per (producer, step).
"""

from __future__ import annotations

from repro.errors import TransportError

__all__ = ["CreditWindow"]


class CreditWindow:
    """A fixed pool of transmission credits with high-water tracking."""

    def __init__(self, credits: int):
        if credits < 1:
            raise TransportError(f"need at least one credit: {credits}")
        self.credits = int(credits)
        self._in_flight = 0
        self.max_depth = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def available(self) -> int:
        return self.credits - self._in_flight

    def try_acquire(self) -> bool:
        """Take a credit if one is free; False means backpressure."""
        if self._in_flight >= self.credits:
            return False
        self._in_flight += 1
        self.max_depth = max(self.max_depth, self._in_flight)
        return True

    def release(self, n: int = 1) -> None:
        """Return ``n`` credits (one per ACKed chunk)."""
        if n < 0 or n > self._in_flight:
            raise TransportError(
                f"cannot release {n} credits with {self._in_flight} in flight"
            )
        self._in_flight -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CreditWindow({self._in_flight}/{self.credits}, "
            f"max_depth={self.max_depth})"
        )
