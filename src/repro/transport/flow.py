"""Credit-based flow control: a bounded, *resizable* in-flight window.

A sender must hold a credit for every un-ACKed chunk; when the window
is exhausted it stops transmitting and services ACKs instead.  That is
the backpressure that keeps a fast producer from queueing unboundedly
ahead of a slow endpoint — the mailbox never holds more than
``credits`` chunks per (producer, step).

The window is the flow-control governor's actuator
(:class:`repro.control.governors.FlowGovernor` via
:meth:`repro.transport.channel.ReliableSender.set_window`):
:meth:`CreditWindow.resize` changes the credit limit at run time.  A
shrink below the current in-flight count never strands credits — the
chunks already on the wire keep their credits and simply drain; the
sender just cannot acquire new credits until the in-flight count falls
below the new limit.
"""

from __future__ import annotations

from repro.errors import TransportError

__all__ = ["CreditWindow"]


class CreditWindow:
    """A resizable pool of transmission credits with high-water tracking."""

    def __init__(self, credits: int):
        if credits < 1:
            raise TransportError(f"need at least one credit: {credits}")
        self.credits = int(credits)
        self._in_flight = 0
        self.max_depth = 0
        self.resizes = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def available(self) -> int:
        return max(0, self.credits - self._in_flight)

    def try_acquire(self) -> bool:
        """Take a credit if one is free; False means backpressure."""
        if self._in_flight >= self.credits:
            return False
        self._in_flight += 1
        self.max_depth = max(self.max_depth, self._in_flight)
        return True

    def release(self, n: int = 1) -> None:
        """Return ``n`` credits (one per ACKed chunk)."""
        if n < 0 or n > self._in_flight:
            raise TransportError(
                f"cannot release {n} credits with {self._in_flight} in flight"
            )
        self._in_flight -= n

    def resize(self, credits: int) -> None:
        """Change the credit limit (the flow governor's actuator).

        Safe at any time: growing frees capacity immediately; shrinking
        below the current in-flight count defers — outstanding chunks
        keep their credits (``release`` still accounts for every one of
        them) and ``try_acquire`` stays refused until ACKs drain the
        count under the new limit.  ``max_depth`` is monotonic: a
        shrink never erases the high-water mark already reached.
        """
        if credits < 1:
            raise TransportError(f"need at least one credit: {credits}")
        self.credits = int(credits)
        self.resizes += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CreditWindow({self._in_flight}/{self.credits}, "
            f"max_depth={self.max_depth})"
        )
