"""M-to-N partitioners: which endpoint serves which producer.

The layout used to hard-code the block mapping (producer ``r`` sends
to endpoint ``r * N // M``).  These partitioners make the
redistribution a per-run choice:

- ``block`` — today's behavior: contiguous producer ranges, so data
  locality between neighbouring ranks is preserved;
- ``cyclic`` — round-robin, which decorrelates endpoint load from any
  spatial gradient in the producer ordering;
- ``weighted`` — greedy longest-processing-time assignment balancing
  the sum of per-producer payload weights (bytes/step) per endpoint;
- ``chain`` — contiguous spans with near-equal weight sums, the 1-D
  chains-on-chains decomposition: balanced like ``weighted`` but
  adjacency-preserving like ``block``, which keeps halo surfaces
  minimal for stencil-style consumers (:mod:`repro.array`).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransportError

__all__ = [
    "Partitioner",
    "BlockPartitioner",
    "CyclicPartitioner",
    "WeightedPartitioner",
    "ChainPartitioner",
    "available_partitioners",
    "get_partitioner",
    "register_partitioner",
]


class Partitioner:
    """Maps producer indices ``[0, m)`` onto endpoint indices ``[0, n)``."""

    name = "abstract"

    def assign(
        self, m: int, n: int, weights: Sequence[float] | None = None
    ) -> list[int]:
        """Endpoint index for every producer; must cover each endpoint."""
        raise NotImplementedError

    def _check(self, m: int, n: int) -> None:
        if m < 1 or n < 1 or n > m:
            raise TransportError(
                f"invalid partition shape m={m}, n={n}",
                details={"m": m, "n": n, "partitioner": self.name},
            )


class BlockPartitioner(Partitioner):
    """Contiguous ranges: producer ``p`` -> ``p * n // m``."""

    name = "block"

    def assign(self, m, n, weights=None):
        self._check(m, n)
        return [p * n // m for p in range(m)]


class CyclicPartitioner(Partitioner):
    """Round-robin: producer ``p`` -> ``p % n``."""

    name = "cyclic"

    def assign(self, m, n, weights=None):
        self._check(m, n)
        return [p % n for p in range(m)]


class WeightedPartitioner(Partitioner):
    """Balance the per-endpoint sum of producer weights (greedy LPT).

    ``weights[p]`` is producer ``p``'s expected payload (bytes per
    step); omitted weights fall back to uniform, which degenerates to
    a fair round-robin-like split.  Ties break toward the lowest
    endpoint index so the assignment is deterministic.
    """

    name = "weighted"

    def assign(self, m, n, weights=None):
        self._check(m, n)
        if weights is None:
            weights = [1.0] * m
        if len(weights) != m:
            raise TransportError(
                f"weighted partitioner needs one weight per producer: "
                f"got {len(weights)} for m={m}",
                details={"m": m, "weights": len(weights)},
            )
        if any(w < 0 for w in weights):
            raise TransportError("producer weights must be non-negative")
        loads = [0.0] * n
        counts = [0] * n
        out = [0] * m
        order = sorted(range(m), key=lambda p: (-float(weights[p]), p))
        for p in order:
            # Least-loaded endpoint; producer count then index break ties
            # so uniform weights still spread producers evenly.
            e = min(range(n), key=lambda i: (loads[i], counts[i], i))
            out[p] = e
            loads[e] += float(weights[p])
            counts[e] += 1
        return out


class ChainPartitioner(Partitioner):
    """Contiguous spans with near-equal weight sums (chains-on-chains).

    The classic 1-D load-balanced decomposition: walk the producers in
    index order and cut where the weight prefix sum crosses each
    endpoint's fair share, keeping every span non-empty.  Uniform (or
    omitted) weights degenerate to the block partitioner's layout;
    skewed weights shift the cut points so each endpoint's *summed*
    weight evens out while spatial adjacency — and therefore minimal
    halo surface for stencil-like consumers — is preserved.
    """

    name = "chain"

    def assign(self, m, n, weights=None):
        self._check(m, n)
        if weights is None:
            weights = [1.0] * m
        if len(weights) != m:
            raise TransportError(
                f"chain partitioner needs one weight per producer: "
                f"got {len(weights)} for m={m}",
                details={"m": m, "weights": len(weights)},
            )
        if any(w < 0 for w in weights):
            raise TransportError("producer weights must be non-negative")
        total = float(sum(weights))
        if total <= 0.0:
            return BlockPartitioner().assign(m, n)
        out = [0] * m
        acc = 0.0
        e = 0
        for p in range(m):
            if e < n - 1 and p > 0 and out[p - 1] == e:
                # Forced cut: the producers left must still cover one
                # endpoint each.  Fair-share cut: the running sum (with
                # half of this producer's weight, so a heavy producer
                # lands on whichever side it overlaps most) crossed
                # this endpoint's boundary.
                forced = (m - p) == (n - e)
                crossed = (
                    acc + float(weights[p]) / 2.0 >= (e + 1) * total / n
                )
                if forced or crossed:
                    e += 1
            out[p] = e
            acc += float(weights[p])
        return out


_PARTITIONERS: dict[str, type[Partitioner]] = {
    cls.name: cls
    for cls in (
        BlockPartitioner, CyclicPartitioner, WeightedPartitioner,
        ChainPartitioner,
    )
}


def available_partitioners() -> tuple[str, ...]:
    return tuple(sorted(_PARTITIONERS))


def register_partitioner(cls: type[Partitioner]) -> type[Partitioner]:
    """Register a partitioner class under its ``name``."""
    _PARTITIONERS[cls.name] = cls
    return cls


def get_partitioner(name: str) -> Partitioner:
    try:
        return _PARTITIONERS[name]()
    except KeyError:
        raise TransportError(
            f"unknown partitioner {name!r}; available: "
            f"{', '.join(available_partitioners())}",
            details={"partitioner": name},
        ) from None
