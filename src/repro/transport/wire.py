"""The versioned wire format: chunked, checksummed column payloads.

A step's table is serialized into one byte blob (columns concatenated,
per-column dtype/length metadata kept aside), optionally compressed,
and split into fixed-size :class:`Chunk`\\ s.  Every chunk carries a
CRC32 of its payload so the receiver can detect corruption and simply
withhold the ACK — corruption recovery falls out of the retry loop.

Codecs are pluggable.  Compression is *charged to the simulated clock*
(CPU seconds per byte at the codec's modeled throughput) while the
communicator charges transfer for the *compressed* bytes, so the
compression knob visibly trades CPU time for transfer time in the
simulated timings and the Chrome trace.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TransportError
from repro.hamr.runtime import current_clock
from repro.units import KiB, gbs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.svtk.table import TableData

__all__ = [
    "WIRE_VERSION",
    "Codec",
    "Chunk",
    "StepAssembler",
    "available_codecs",
    "get_codec",
    "register_codec",
    "encode_step",
    "decode_step",
]

#: Version stamped into every chunk; receivers reject mismatches.
WIRE_VERSION = 1

#: Default chunk payload size.
DEFAULT_CHUNK_BYTES = 64 * KiB

#: Modeled memcpy throughput for raw (uncompressed) serialization.
SERIALIZE_BANDWIDTH = gbs(8.0)

#: Simulated per-chunk header size on the wire (version, seqs, crc, meta).
HEADER_NBYTES = 64


class Codec:
    """A compression codec plus its simulated CPU cost model.

    ``compress_bandwidth`` / ``decompress_bandwidth`` are bytes/second
    of *input* processed; they drive the simulated-clock charge, not
    wall time.
    """

    name = "none"
    compress_bandwidth = SERIALIZE_BANDWIDTH
    decompress_bandwidth = SERIALIZE_BANDWIDTH

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data

    def compress_time(self, nbytes: int) -> float:
        return nbytes / self.compress_bandwidth

    def decompress_time(self, nbytes: int) -> float:
        return nbytes / self.decompress_bandwidth


class ZlibCodec(Codec):
    """DEFLATE at a fast level — the baseline general-purpose codec."""

    name = "zlib"
    # Modeled as an LZ-class fast path; real zlib-1 is slower, but the
    # ordering (compress slower than memcpy, decompress faster than
    # compress) is what the cost model needs to preserve.
    compress_bandwidth = gbs(2.0)
    decompress_bandwidth = gbs(4.0)

    def __init__(self, level: int = 1):
        self.level = int(level)

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


_CODECS: dict[str, type[Codec]] = {"none": Codec, "zlib": ZlibCodec}


def available_codecs() -> tuple[str, ...]:
    return tuple(sorted(_CODECS))


def register_codec(cls: type[Codec]) -> type[Codec]:
    """Register a codec class under its ``name`` (decorator-friendly)."""
    _CODECS[cls.name] = cls
    return cls


def get_codec(name: str) -> Codec:
    try:
        return _CODECS[name]()
    except KeyError:
        raise TransportError(
            f"unknown codec {name!r}; available: {', '.join(available_codecs())}",
            details={"codec": name},
        ) from None


@dataclass(frozen=True)
class Chunk:
    """One wire unit: a slice of a step's (possibly compressed) blob.

    ``meta`` travels on every chunk (it is small) so assembly never
    depends on which chunk arrives first.
    """

    version: int
    step: int
    sim_time: float
    index: int
    total: int
    checksum: int
    codec: str
    raw_nbytes: int
    meta: tuple  # ((column name, dtype str, length), ...)
    payload: bytes
    #: Service-plane routing stamp; "" for single-pipeline flows.  The
    #: stamp rides in the fixed-size header, so ``wire_nbytes`` does not
    #: change with the pipeline name.
    pipeline: str = ""

    @property
    def wire_nbytes(self) -> int:
        """Bytes this chunk occupies on the wire (payload + header)."""
        return len(self.payload) + HEADER_NBYTES

    @property
    def seq(self) -> tuple[int, int]:
        """The (step, chunk index) sequence number receivers dedup by."""
        return (self.step, self.index)

    def verify(self) -> bool:
        """True if the payload matches the recorded checksum."""
        return zlib.crc32(self.payload) == self.checksum

    def corrupted(self) -> "Chunk":
        """A copy with one payload byte flipped (fault-injection aid)."""
        if not self.payload:
            return self
        flipped = bytearray(self.payload)
        flipped[0] ^= 0xFF
        return Chunk(
            self.version, self.step, self.sim_time, self.index, self.total,
            self.checksum, self.codec, self.raw_nbytes, self.meta,
            bytes(flipped), self.pipeline,
        )


def encode_step(
    table: "TableData",
    step: int,
    sim_time: float,
    codec: str | Codec = "none",
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    pipeline: str = "",
) -> list[Chunk]:
    """Serialize a table into wire chunks, charging CPU to the clock.

    The charge is serialization (memcpy-rate) plus the codec's
    compression time over the raw bytes.
    """
    if chunk_bytes < 1:
        raise TransportError(f"chunk_bytes must be >= 1: {chunk_bytes}")
    codec = get_codec(codec) if isinstance(codec, str) else codec
    arrays = [
        np.ascontiguousarray(table.column(name).as_numpy_host())
        for name in table.column_names
    ]
    meta = tuple(
        (name, a.dtype.str, int(a.size))
        for name, a in zip(table.column_names, arrays)
    )
    blob = b"".join(a.tobytes() for a in arrays)
    raw_nbytes = len(blob)
    clock = current_clock()
    clock.advance(raw_nbytes / SERIALIZE_BANDWIDTH)
    wire_blob = codec.compress(blob)
    if codec.name != "none":
        clock.advance(codec.compress_time(raw_nbytes))
    total = max(1, -(-len(wire_blob) // chunk_bytes))
    chunks = []
    for i in range(total):
        payload = wire_blob[i * chunk_bytes:(i + 1) * chunk_bytes]
        chunks.append(
            Chunk(
                version=WIRE_VERSION,
                step=int(step),
                sim_time=float(sim_time),
                index=i,
                total=total,
                checksum=zlib.crc32(payload),
                codec=codec.name,
                raw_nbytes=raw_nbytes,
                meta=meta,
                payload=payload,
                pipeline=pipeline,
            )
        )
    return chunks


def decode_step(chunks: list[Chunk]) -> tuple[int, float, dict[str, np.ndarray]]:
    """Reassemble a complete chunk set into ``(step, time, columns)``.

    Charges decompression CPU to the receiver's simulated clock.
    """
    if not chunks:
        raise TransportError("cannot decode an empty chunk set")
    first = chunks[0]
    if first.version != WIRE_VERSION:
        raise TransportError(
            f"wire version mismatch: got {first.version}, "
            f"speak {WIRE_VERSION}",
            details={"version": first.version},
        )
    ordered = sorted(chunks, key=lambda c: c.index)
    if [c.index for c in ordered] != list(range(first.total)):
        raise TransportError(
            f"incomplete chunk set for step {first.step}: have "
            f"{sorted(c.index for c in chunks)} of {first.total}",
            details={"step": first.step, "total": first.total},
        )
    wire_blob = b"".join(c.payload for c in ordered)
    codec = get_codec(first.codec)
    blob = codec.decompress(wire_blob)
    if codec.name != "none":
        current_clock().advance(codec.decompress_time(first.raw_nbytes))
    if len(blob) != first.raw_nbytes:
        raise TransportError(
            f"decoded {len(blob)} bytes, header promised {first.raw_nbytes}",
            details={"step": first.step},
        )
    columns: dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype_str, length in first.meta:
        dt = np.dtype(dtype_str)
        nbytes = dt.itemsize * length
        columns[name] = np.frombuffer(
            blob, dtype=dt, count=length, offset=offset
        ).copy()
        offset += nbytes
    return first.step, first.sim_time, columns


class StepAssembler:
    """Receiver-side reassembly with (step, chunk) dedup.

    Chunks may arrive out of order, duplicated, or for steps already
    delivered; :meth:`offer` classifies each one.  Completed steps stay
    in the dedup set so late duplicates are recognized forever.
    """

    def __init__(self):
        self._pending: dict[int, dict[int, Chunk]] = {}
        self._done: set[int] = set()

    def is_done(self, step: int) -> bool:
        return step in self._done

    def offer(self, chunk: Chunk) -> str:
        """Add a chunk; returns ``"new"``, ``"duplicate"``, or ``"complete"``."""
        if chunk.step in self._done:
            return "duplicate"
        have = self._pending.setdefault(chunk.step, {})
        if chunk.index in have:
            return "duplicate"
        have[chunk.index] = chunk
        if len(have) == chunk.total:
            return "complete"
        return "new"

    def take(self, step: int) -> tuple[int, float, dict[str, np.ndarray]]:
        """Decode and retire a completed step."""
        chunks = list(self._pending.pop(step).values())
        self._done.add(step)
        return decode_step(chunks)
