"""``repro.transport`` — the pluggable data-transport plane.

In transit analysis lives or dies by how data moves off node.  This
package is the transport plane under :mod:`repro.sensei.intransit`:

- :mod:`repro.transport.wire` — a versioned wire format: column
  payloads chunked with per-chunk CRC32 checksums and pluggable
  compression codecs whose CPU cost is charged to the simulated clock;
- :mod:`repro.transport.channel` — the delivery layer: an injectable
  lossy/duplicating/reordering/corrupting channel for fault testing,
  plus the reliable sender/receiver pair (ACKs, dedup, drain);
- :mod:`repro.transport.retry` — sender-side retry with exponential
  backoff and jitter;
- :mod:`repro.transport.flow` — bounded, run-time *resizable*
  in-flight credit window so producers backpressure instead of
  queueing unboundedly (the flow-control governor's actuator);
- :mod:`repro.transport.partition` — M-to-N partitioners (``block``,
  ``cyclic``, ``weighted``);
- :mod:`repro.transport.metrics` — per-endpoint transport counters
  recorded as :class:`~repro.hw.clock.TimedEvent`\\ s for the
  Chrome-trace export;
- :mod:`repro.transport.config` — :class:`TransportConfig`, the
  ``<transport .../>`` element of the SENSEI XML schema.
"""

from __future__ import annotations

from repro.transport.channel import (
    Channel,
    FaultSpec,
    FaultyChannel,
    ReliableReceiver,
    ReliableSender,
)
from repro.transport.config import TransportConfig
from repro.transport.flow import CreditWindow
from repro.transport.metrics import (
    TransportMetrics,
    reset_transport_timelines,
    transport_timelines,
)
from repro.transport.partition import available_partitioners, get_partitioner
from repro.transport.retry import RetryPolicy
from repro.transport.wire import (
    Chunk,
    StepAssembler,
    available_codecs,
    decode_step,
    encode_step,
    get_codec,
)

__all__ = [
    "Channel",
    "Chunk",
    "CreditWindow",
    "FaultSpec",
    "FaultyChannel",
    "ReliableReceiver",
    "ReliableSender",
    "RetryPolicy",
    "StepAssembler",
    "TransportConfig",
    "TransportMetrics",
    "available_codecs",
    "available_partitioners",
    "decode_step",
    "encode_step",
    "get_codec",
    "get_partitioner",
    "reset_transport_timelines",
    "transport_timelines",
]
