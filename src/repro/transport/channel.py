"""The delivery layer: channels, fault injection, reliable endpoints.

A :class:`Channel` is the thin seam between the transport plane and a
:class:`~repro.mpi.comm.Communicator`; :class:`FaultyChannel` makes
that seam injectable, perturbing the *data* direction with drops,
duplicates, reordering, and payload corruption so delivery robustness
can be rehearsed deterministically (seeded).

On top of the channel sit the two reliable endpoints:

- :class:`ReliableSender` — transmits chunks under a bounded credit
  window (:mod:`repro.transport.flow`), collects per-chunk ACKs, and
  retransmits lost chunks with exponential backoff
  (:mod:`repro.transport.retry`).  Loss is decided on the send side
  (faults are injected from a seeded RNG), so the channel reports each
  frame's delivery verdict at send time and the sender schedules
  retransmissions from that verdict instead of a wall-clock timer:
  retry counts are a pure function of the seeds, immune to CPU
  contention.  Backoff is charged to the sender's simulated clock, so
  fault recovery is visible on the timeline and a clean run costs
  exactly serialization plus wire time.  ``RetryPolicy.ack_timeout``
  survives only as the wall-clock stall guard that detects a peer
  that never serves.
- :class:`ReliableReceiver` — verifies checksums (a corrupt chunk is
  silently dropped: the missing ACK triggers retransmission), dedups
  by (step, chunk) sequence number, ACKs idempotently, and honors the
  graceful drain protocol: the producer's ``fin`` frame is answered
  with ``fin_ack`` only once everything before it was delivered.

ACK and ``fin`` traffic is control plane: it moves through the
communicator's mailboxes but is *not* charged to the simulated clock
(``charge=False``), modeling the asynchronous progress engine a real
transport runs beside the application.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import TransportError
from repro.hamr.runtime import current_clock
from repro.hw.clock import EventCategory, Timeline
from repro.transport.flow import CreditWindow
from repro.transport.metrics import TransportMetrics, new_transport_timeline
from repro.transport.wire import Chunk, StepAssembler, encode_step, get_codec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator
    from repro.svtk.table import TableData
    from repro.transport.config import TransportConfig

__all__ = [
    "DATA_TAG",
    "ACK_TAG",
    "FaultSpec",
    "Channel",
    "FaultyChannel",
    "ReliableSender",
    "ReliableReceiver",
]

#: Tag space reserved by the transport plane.
DATA_TAG = 100
ACK_TAG = 101

#: Wall-clock seconds between receiver mailbox polls.
_POLL = 0.02

#: Simulated wire bytes of a control frame (fin / ack).
_CONTROL_NBYTES = 16


@dataclass(frozen=True)
class FaultSpec:
    """Injected channel faults (independent probabilities per frame).

    ``congestion_bytes``/``congestion_drop`` model a *shallow pipe*:
    when the sender's in-flight bytes exceed ``congestion_bytes``, the
    drop probability rises by ``congestion_drop`` per multiple of
    overshoot — the switch-buffer overflow that punishes overdriving a
    link, and the loss signal the flow-control governor reacts to.
    ``congestion_bytes=0`` (the default) disables congestion entirely.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    seed: int = 0
    congestion_bytes: int = 0
    congestion_drop: float = 0.0

    def __post_init__(self):
        for name in ("drop", "duplicate", "reorder", "corrupt",
                     "congestion_drop"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise TransportError(
                    f"fault probability {name}={v} outside [0, 1]"
                )
        if self.congestion_bytes < 0:
            raise TransportError(
                f"congestion_bytes must be >= 0: {self.congestion_bytes}"
            )

    @property
    def congested(self) -> bool:
        """True when the shallow-pipe congestion model is active."""
        return bool(self.congestion_bytes and self.congestion_drop)

    @property
    def any(self) -> bool:
        return bool(
            self.drop or self.duplicate or self.reorder or self.corrupt
            or self.congested
        )


def _frame_nbytes(frame: tuple) -> int:
    """Simulated wire size of one data-direction frame."""
    if frame[0] == "chunk":
        return frame[1].wire_nbytes
    return _CONTROL_NBYTES


class Channel:
    """Direct, reliable, in-order delivery over a communicator.

    ``charge`` controls whether data-direction sends bill the sender's
    simulated clock through the communicator's cost model.  The
    reliable sender flips it off when it charges pipelined wire time
    itself (``TransportConfig.pipelined``) so bytes are never billed
    twice.  ``load`` is the sender's current in-flight byte count —
    ignored here, consumed by :class:`FaultyChannel`'s congestion
    model.

    :meth:`send` returns the frame's *delivery verdict*: True when the
    frame will reach the peer's mailbox intact, False when it was lost
    or corrupted en route.  A clean channel always delivers; the faulty
    channel knows the verdict at send time because it injects the
    faults itself.  The reliable sender consumes the verdict purely for
    retransmit *scheduling* — it produces the same retransmission
    sequence a timeout-driven sender would, minus the wall-clock
    sensitivity.
    """

    def __init__(self, comm: "Communicator"):
        self.comm = comm
        self.charge = True

    def send(self, frame: tuple, dest: int, tag: int, load: int = 0) -> bool:
        self.comm.send(frame, dest, tag, charge=self.charge)
        return True

    def flush(self, dest: int, tag: int) -> None:
        """Release any frames the channel is holding back (no-op)."""


class FaultyChannel(Channel):
    """A channel that loses, duplicates, reorders, and corrupts frames.

    Faults are applied on the send side, deterministically from
    ``faults.seed`` and the sender's rank.  A dropped frame still
    charges its wire cost to the sender's clock (the bytes left the
    NIC; delivery is what failed).  Reordering holds one frame back
    and releases it after the next send (or on :meth:`flush`), the
    minimal perturbation that breaks in-order assumptions.
    """

    def __init__(self, comm: "Communicator", faults: FaultSpec):
        super().__init__(comm)
        self.faults = faults
        self._rng = random.Random(f"{faults.seed}:{getattr(comm, 'rank', 0)}")
        self._stash: tuple | None = None  # (frame, dest, tag)
        self.injected = {
            "drop": 0, "duplicate": 0, "reorder": 0, "corrupt": 0,
            "congestion": 0,
        }

    def _drop_probability(self, frame: tuple, load: int) -> float:
        """Per-frame loss probability, inflated by pipe overshoot."""
        f = self.faults
        p = f.drop
        if (
            frame[0] == "chunk"
            and f.congested
            and load > f.congestion_bytes
        ):
            over = (load - f.congestion_bytes) / f.congestion_bytes
            p = min(0.95, p + f.congestion_drop * over)
        return p

    def send(self, frame: tuple, dest: int, tag: int, load: int = 0) -> bool:
        f = self.faults
        deliverable = True
        if (
            frame[0] == "chunk"
            and f.corrupt
            and self._rng.random() < f.corrupt
        ):
            # The corrupt frame still travels (and bills wire bytes at
            # the receiver) but fails its checksum there, so no ACK
            # will ever come back: the verdict is already "lost".
            frame = ("chunk", frame[1].corrupted())
            self.injected["corrupt"] += 1
            deliverable = False
        p_drop = self._drop_probability(frame, load)
        if p_drop and self._rng.random() < p_drop:
            self.injected["drop"] += 1
            if p_drop > f.drop:
                self.injected["congestion"] += 1
            if self.charge:
                cost = getattr(self.comm, "cost", None)
                if cost is not None:
                    current_clock().advance(cost.message(_frame_nbytes(frame)))
            self._release(dest, tag)
            return False
        if f.reorder and self._stash is None and self._rng.random() < f.reorder:
            self.injected["reorder"] += 1
            self._stash = (frame, dest, tag)
            return deliverable
        self.comm.send(frame, dest, tag, charge=self.charge)
        if f.duplicate and self._rng.random() < f.duplicate:
            self.injected["duplicate"] += 1
            self.comm.send(frame, dest, tag, charge=self.charge)
        self._release(dest, tag)
        return deliverable

    def _release(self, dest: int, tag: int) -> None:
        if self._stash is not None:
            stashed, sdest, stag = self._stash
            self._stash = None
            self.comm.send(stashed, sdest, stag, charge=self.charge)

    def flush(self, dest: int, tag: int) -> None:
        self._release(dest, tag)


class _InFlight:
    """Book-keeping for one transmitted-but-unACKed chunk.

    ``delivered`` is the channel's verdict for the last transmission:
    True means an ACK is coming (block for it), False means the frame
    was lost or corrupted and must be retransmitted.  The stall guard
    demotes delivered chunks to lost when the peer never serves.
    """

    __slots__ = ("chunk", "attempts", "delivered", "sent_at")

    def __init__(self, chunk: Chunk, delivered: bool, sent_at: float):
        self.chunk = chunk
        self.attempts = 1
        self.delivered = delivered
        self.sent_at = sent_at  # simulated clock at last transmit


class ReliableSender:
    """Producer-side reliable delivery of step payloads to one endpoint."""

    def __init__(
        self,
        comm: "Communicator",
        dest: int,
        config: "TransportConfig | None" = None,
        metrics: TransportMetrics | None = None,
        timeline: Timeline | None = None,
        data_tag: int = DATA_TAG,
        ack_tag: int = ACK_TAG,
        pipeline: str = "",
        load_board=None,
    ):
        if config is None:
            from repro.transport.config import TransportConfig

            config = TransportConfig()
        self.comm = comm
        self.dest = int(dest)
        self.config = config
        self.data_tag = int(data_tag)
        self.ack_tag = int(ack_tag)
        self.pipeline = pipeline
        #: Optional service-plane aggregate of in-flight bytes per
        #: endpoint, shared by every sender targeting that endpoint.
        #: When set, the congestion model sees the *sum* of all tenants'
        #: outstanding bytes — the shared-bottleneck physics that makes
        #: admission control matter.
        self.load_board = load_board
        self.codec = get_codec(config.initial_codec)
        self.policy = config.retry
        self.window = CreditWindow(config.max_inflight)
        self.chunk_bytes = int(config.chunk_bytes)
        self.channel: Channel = (
            FaultyChannel(comm, config.faults)
            if config.faults.any
            else Channel(comm)
        )
        self._pipelined = bool(getattr(config, "pipelined", False))
        if self._pipelined:
            # Wire time is charged here, amortizing link latency over
            # the in-flight depth; the channel must not bill it again.
            self.channel.charge = False
        self._inflight_bytes = 0
        self._rng = random.Random(f"{config.faults.seed}:{comm.rank}:backoff")
        peer = (
            f"{pipeline}:rank{comm.rank}->rank{dest}"
            if pipeline else f"rank{comm.rank}->rank{dest}"
        )
        self.metrics = metrics if metrics is not None else TransportMetrics(
            role="sender", peer=peer
        )
        self.timeline = timeline if timeline is not None else (
            new_transport_timeline(f"transport.{peer}")
        )
        self.steps_sent = 0
        self._closed = False

    def set_codec(self, name: str) -> None:
        """Switch the wire codec for subsequent steps (control-plane hook).

        Safe at any step boundary: every chunk carries its codec name,
        so the receiver decodes each step with whatever codec encoded
        it — no sender/receiver renegotiation is needed.
        """
        self.codec = get_codec(name)

    def set_window(self, credits: int) -> None:
        """Resize the credit window (control-plane hook).

        Mirrors :meth:`set_codec`: safe at any step boundary, and safe
        mid-step too — a shrink below the current in-flight count
        defers until ACKs drain (:meth:`CreditWindow.resize` never
        strands credits already on the wire).
        """
        self.window.resize(credits)

    def set_chunk_bytes(self, nbytes: int) -> None:
        """Retarget the wire chunk size (control-plane hook).

        Takes effect at the next :meth:`send_step`: chunking happens at
        encode time, so steps already on the wire are untouched and the
        receiver needs no renegotiation (every chunk self-describes).
        """
        if nbytes < 1:
            raise TransportError(f"chunk_bytes must be >= 1: {nbytes}")
        self.chunk_bytes = int(nbytes)

    # -- data path -------------------------------------------------------------
    def send_step(self, step: int, sim_time: float, table: "TableData") -> None:
        """Deliver one step's table reliably; blocks until fully ACKed."""
        if self._closed:
            raise TransportError("sender already drained", details=self._ids())
        clock = current_clock()
        t0 = clock.now
        chunks = encode_step(
            table, step, sim_time, self.codec, self.chunk_bytes,
            pipeline=self.pipeline,
        )
        self.timeline.record(
            t0, clock.now, name=f"encode step {step}",
            category=EventCategory.COMPUTE,
        )
        self.metrics.steps += 1
        self.metrics.raw_bytes += chunks[0].raw_nbytes
        self.metrics.wire_bytes += sum(c.wire_nbytes for c in chunks)

        pending = deque(chunks)
        inflight: dict[int, _InFlight] = {}
        peak = 0
        while pending or inflight:
            while pending and self.window.try_acquire():
                c = pending.popleft()
                self._load_add(c.wire_nbytes)
                peak = max(peak, self.window.in_flight)
                delivered = self._transmit(c)
                inflight[c.index] = _InFlight(c, delivered, clock.now)
            self.channel.flush(self.dest, self.data_tag)
            if any(f.delivered for f in inflight.values()):
                self._await_acks(step, inflight)
            elif inflight:
                # Nothing in flight is awaiting an ACK: the sweep's
                # position in the send sequence is a pure function of
                # the fault seeds, never of wall-clock scheduling.
                self._retransmit_lost(step, inflight)
        if self._inflight_bytes:
            self._load_add(-self._inflight_bytes)
        self.metrics.inflight_peak = peak
        self.metrics.max_queue_depth = max(
            self.metrics.max_queue_depth, self.window.max_depth
        )
        self.steps_sent += 1

    def _load_add(self, delta: int) -> None:
        """Mirror in-flight byte accounting into the shared board."""
        self._inflight_bytes = max(0, self._inflight_bytes + delta)
        if self.load_board is not None:
            self.load_board.add(self.dest, delta)

    def _offered_load(self) -> int:
        """In-flight bytes the congestion model should see for this link."""
        if self.load_board is not None:
            return self.load_board.load(self.dest)
        return self._inflight_bytes

    def _transmit(self, chunk: Chunk) -> bool:
        clock = current_clock()
        t0 = clock.now
        delivered = self.channel.send(
            ("chunk", chunk), self.dest, self.data_tag,
            load=self._offered_load(),
        )
        if self._pipelined:
            # Pipelined wire model: a window of W outstanding chunks
            # overlaps W handshakes, so each transmit pays 1/W of the
            # link latency plus its serialization time on the pipe.
            cost = getattr(self.comm, "cost", None)
            if cost is not None:
                depth = max(1, self.window.in_flight)
                clock.advance(
                    cost.latency / depth + chunk.wire_nbytes / cost.bandwidth
                )
        self.timeline.record(
            t0, clock.now,
            name=f"send s{chunk.step}c{chunk.index}",
            category=EventCategory.COMM,
        )
        self.metrics.chunks_sent += 1
        self.metrics.bytes_out += chunk.wire_nbytes
        return delivered

    def _await_acks(self, step: int, inflight: dict[int, _InFlight]) -> None:
        """Block until one ACK lands (or the mute-peer guard fires).

        Every chunk marked ``delivered`` WILL be ACKed once the peer
        processes it — loss was ruled out at send time — so blocking
        here is safe and keeps retry counts independent of wall-clock
        load.  The ``ack_timeout`` stall guard exists only for a peer
        that never serves: on expiry every in-flight chunk is demoted
        to lost, handing it to the retry path and its bounded budget.
        """
        clock = current_clock()
        guard = time.monotonic() + self.policy.ack_timeout
        while True:
            try:
                frame = self.comm.recv(
                    self.dest, self.ack_tag, timeout=_POLL, charge=False
                )
            except TimeoutError:
                if time.monotonic() >= guard:
                    for f in inflight.values():
                        f.delivered = False
                    return
                continue
            if frame[0] != "ack" or frame[1] != step:
                continue  # stale control traffic from an earlier step
            progressed = False
            for idx in frame[2]:
                state = inflight.pop(idx, None)
                if state is None:
                    continue  # duplicate ACK
                self.window.release()
                self._load_add(
                    -min(state.chunk.wire_nbytes, self._inflight_bytes)
                )
                self.metrics.acks_received += 1
                self.metrics.observe_ack_latency(clock.now - state.sent_at)
                if state.attempts > 1:
                    self.metrics.drops_recovered += 1
                progressed = True
            if progressed:
                return

    def _retransmit_lost(self, step: int, inflight: dict[int, _InFlight]) -> None:
        """Retransmit every in-flight chunk the channel reported lost.

        Reached only when nothing in flight is awaiting an ACK, so the
        sweep happens at a deterministic point in the send sequence and
        every fault draw — hence every retry count — is a pure function
        of the seeds.  One backoff per sweep: the sender pauses, then
        retransmits everything lost — charged to the simulated clock so
        fault recovery shows up in the trace (and never on a clean run).
        """
        lost = sorted(inflight.values(), key=lambda s: s.chunk.index)
        exhausted = [f for f in lost if f.attempts > self.policy.max_retries]
        if exhausted:
            c = exhausted[0].chunk
            raise TransportError(
                f"chunk {c.seq} to rank {self.dest} unacknowledged after "
                f"{self.policy.max_retries} retries",
                details={
                    **self._ids(), "step": c.step, "chunk": c.index,
                    "retries": self.policy.max_retries,
                },
            )
        clock = current_clock()
        delay = self.policy.backoff(
            min(f.attempts for f in lost), self._rng
        )
        t0 = clock.now
        clock.advance(delay)
        self.timeline.record(
            t0, clock.now, name=f"backoff step {step}",
            category=EventCategory.SYNC,
        )
        self.metrics.backoff_time += delay
        for f in lost:
            self.metrics.retries += 1
            f.attempts += 1
            f.delivered = self._transmit(f.chunk)
            f.sent_at = clock.now
        self.channel.flush(self.dest, self.data_tag)

    # -- drain ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful drain: ``fin`` / ``fin_ack`` handshake with retries.

        Drain-phase retransmissions use the same accounting as the
        data path (:meth:`_retransmit_lost`): a retry counter, a
        backoff charged to the simulated clock, and a timeline event —
        fault recovery during drain is just as visible as mid-step.
        A fin the channel reports lost is retransmitted immediately
        (no wall-clock wait — the verdict is already in); the
        ``ack_timeout`` wait survives only as the stall guard for a
        delivered fin whose peer never answers.
        """
        if self._closed:
            return
        clock = current_clock()
        attempts = 0
        while True:
            attempts += 1
            if attempts > 1:
                self.metrics.retries += 1
                delay = self.policy.backoff(attempts - 1, self._rng)
                t0 = clock.now
                clock.advance(delay)
                self.timeline.record(
                    t0, clock.now, name="backoff fin",
                    category=EventCategory.SYNC,
                )
                self.metrics.backoff_time += delay
            delivered = self.channel.send(
                ("fin", self.steps_sent), self.dest, self.data_tag
            )
            if self._pipelined:
                cost = getattr(self.comm, "cost", None)
                if cost is not None:
                    clock.advance(cost.message(_CONTROL_NBYTES))
            self.channel.flush(self.dest, self.data_tag)
            deadline = time.monotonic() + self.policy.ack_timeout
            while delivered and time.monotonic() < deadline:
                try:
                    frame = self.comm.recv(
                        self.dest, self.ack_tag, timeout=_POLL, charge=False
                    )
                except TimeoutError:
                    continue
                if frame[0] == "fin_ack":
                    self._closed = True
                    return
            if attempts > self.policy.max_retries:
                raise TransportError(
                    f"drain to rank {self.dest} never acknowledged "
                    f"({attempts} attempts)",
                    details={**self._ids(), "attempts": attempts},
                )

    def _ids(self) -> dict:
        return {"rank": self.comm.rank, "dest": self.dest}


class ReliableReceiver:
    """Endpoint-side reliable reception from one producer."""

    def __init__(
        self,
        comm: "Communicator",
        source: int,
        config: "TransportConfig | None" = None,
        metrics: TransportMetrics | None = None,
        timeline: Timeline | None = None,
        data_tag: int = DATA_TAG,
        ack_tag: int = ACK_TAG,
        pipeline: str = "",
    ):
        if config is None:
            from repro.transport.config import TransportConfig

            config = TransportConfig()
        self.comm = comm
        self.source = int(source)
        self.config = config
        self.data_tag = int(data_tag)
        self.ack_tag = int(ack_tag)
        self.pipeline = pipeline
        self.assembler = StepAssembler()
        peer = (
            f"{pipeline}:rank{source}->rank{comm.rank}"
            if pipeline else f"rank{source}->rank{comm.rank}"
        )
        self.metrics = metrics if metrics is not None else TransportMetrics(
            role="receiver", peer=peer
        )
        self.timeline = timeline if timeline is not None else (
            new_transport_timeline(f"transport.{peer}.recv")
        )
        self.finished = False
        self.steps_delivered = 0

    def _ingest(self, frame: tuple):
        """Process one data-direction frame.

        Returns ``("fin", None)`` after answering the drain handshake,
        ``("step", (step, time, columns))`` when the frame completed a
        step, ``("chunk", None)`` for verified mid-step progress, and
        ``("drop", None)`` for corrupt frames (ACK withheld).
        """
        if frame[0] == "fin":
            self._ack(("fin_ack",))
            self.finished = True
            return ("fin", None)
        chunk: Chunk = frame[1]
        # Every arriving chunk hits the wire — corrupt ones too —
        # so bytes_in must count it before the checksum verdict;
        # wire_bytes below stays unique-verified-only.
        self.metrics.bytes_in += chunk.wire_nbytes
        if not chunk.verify():
            # Withhold the ACK; the retransmission carries clean bytes.
            self.metrics.checksum_failures += 1
            return ("drop", None)
        if self.pipeline and chunk.pipeline and chunk.pipeline != self.pipeline:
            raise TransportError(
                f"misrouted chunk: pipeline {chunk.pipeline!r} arrived on "
                f"the {self.pipeline!r} flow from producer {self.source}",
                details={
                    "rank": self.comm.rank,
                    "source": self.source,
                    "expected": self.pipeline,
                    "got": chunk.pipeline,
                },
            )
        self.metrics.chunks_received += 1
        status = self.assembler.offer(chunk)
        self._ack(("ack", chunk.step, (chunk.index,)))
        if status == "duplicate":
            self.metrics.duplicates_dropped += 1
            return ("chunk", None)
        self.metrics.wire_bytes += chunk.wire_nbytes  # unique chunks only
        if status == "complete":
            clock = current_clock()
            t0 = clock.now
            step, sim_time, columns = self.assembler.take(chunk.step)
            self.timeline.record(
                t0, clock.now, name=f"decode step {step}",
                category=EventCategory.COMPUTE,
            )
            self.metrics.steps += 1
            self.metrics.raw_bytes += chunk.raw_nbytes
            self.steps_delivered += 1
            return ("step", (step, sim_time, columns))
        return ("chunk", None)

    def receive_step(self):
        """The next complete ``(step, time, columns)``, or None after fin."""
        if self.finished:
            return None
        deadline = time.monotonic() + self.config.recv_timeout
        while True:
            try:
                frame = self.comm.recv(
                    self.source, self.data_tag, timeout=_POLL
                )
            except TimeoutError:
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"no traffic from producer {self.source} within "
                        f"{self.config.recv_timeout}s",
                        details={
                            "rank": self.comm.rank,
                            "source": self.source,
                            "timeout": self.config.recv_timeout,
                        },
                    ) from None
                continue
            kind, value = self._ingest(frame)
            if kind == "fin":
                return None
            if kind == "drop":
                continue
            # A verified frame is progress: reset the patience window
            # so a long multi-chunk step on a lossy link is never
            # aborted while chunks are steadily arriving.
            deadline = time.monotonic() + self.config.recv_timeout
            if kind == "step":
                return value

    def poll(self):
        """Drain available frames without blocking (service-plane hook).

        Returns ``None`` when the mailbox is empty (or only partial
        progress was made), ``("step", (step, time, columns))`` for a
        completed step, or ``("fin", None)`` once the producer drains.
        Unlike :meth:`receive_step` this never waits, so one endpoint
        thread can multiplex many flows without a slow producer
        stalling its siblings.
        """
        if self.finished:
            return None
        while True:
            try:
                frame = self.comm.recv(self.source, self.data_tag, timeout=0)
            except TimeoutError:
                return None
            kind, value = self._ingest(frame)
            if kind == "fin":
                return ("fin", None)
            if kind == "step":
                return ("step", value)

    def _ack(self, frame: tuple) -> None:
        self.comm.send(frame, self.source, self.ack_tag, charge=False)
        self.metrics.acks_sent += 1
