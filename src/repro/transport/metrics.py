"""Transport observability: counters + timeline events for the trace.

Every sender/receiver owns a :class:`TransportMetrics` and a dedicated
:class:`~repro.hw.clock.Timeline` registered process-wide, so
``repro.hw.trace.chrome_trace`` picks transport activity up exactly
like device/stream activity.  The counters additionally export
Chrome-trace *counter* events (``"ph": "C"``) so retries, bytes, and
the compression ratio are inspectable in Perfetto next to the
timelines they explain.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.hw.clock import Timeline

__all__ = [
    "TransportMetrics",
    "new_transport_timeline",
    "transport_timelines",
    "reset_transport_timelines",
]


@dataclass
class TransportMetrics:
    """Counters for one transport endpoint (one sender or receiver)."""

    role: str = ""  # "sender" or "receiver"
    peer: str = ""  # e.g. "rank3->rank8"
    steps: int = 0
    raw_bytes: int = 0  # pre-codec payload bytes
    wire_bytes: int = 0  # bytes actually put on the wire (first sends)
    bytes_out: int = 0  # everything transmitted, retries included
    bytes_in: int = 0
    chunks_sent: int = 0
    chunks_received: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    retries: int = 0
    drops_recovered: int = 0  # chunks that needed >= 1 retransmission
    duplicates_dropped: int = 0
    checksum_failures: int = 0
    backoff_time: float = 0.0  # simulated seconds spent backing off
    max_queue_depth: int = 0  # credit-window high-water mark
    ack_latency: float = 0.0  # EWMA of per-chunk ACK RTT (simulated s)
    ack_samples: int = 0  # RTT samples folded into the EWMA
    inflight_peak: int = 0  # in-flight high-water of the latest step
    extras: dict = field(default_factory=dict)

    #: EWMA weight for :meth:`observe_ack_latency` (newest sample).
    ACK_LATENCY_ALPHA = 0.3

    def observe_ack_latency(self, rtt: float) -> float:
        """Fold one per-chunk ACK round-trip time into the EWMA.

        The sample is *simulated* seconds between a chunk's transmit
        and its ACK being serviced, so the estimate is deterministic
        under seeded faults — the flow governor's latency signal.
        """
        if self.ack_samples == 0:
            self.ack_latency = float(rtt)
        else:
            self.ack_latency += self.ACK_LATENCY_ALPHA * (
                float(rtt) - self.ack_latency
            )
        self.ack_samples += 1
        return self.ack_latency

    @property
    def compression_ratio(self) -> float:
        """raw/wire byte ratio (1.0 when nothing was sent or codec=none)."""
        return self.raw_bytes / self.wire_bytes if self.wire_bytes else 1.0

    def as_dict(self) -> dict:
        out = {
            "role": self.role,
            "peer": self.peer,
            "steps": self.steps,
            "raw_bytes": self.raw_bytes,
            "wire_bytes": self.wire_bytes,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "chunks_sent": self.chunks_sent,
            "chunks_received": self.chunks_received,
            "acks_sent": self.acks_sent,
            "acks_received": self.acks_received,
            "retries": self.retries,
            "drops_recovered": self.drops_recovered,
            "duplicates_dropped": self.duplicates_dropped,
            "checksum_failures": self.checksum_failures,
            "backoff_time": self.backoff_time,
            "max_queue_depth": self.max_queue_depth,
            "ack_latency": self.ack_latency,
            "ack_samples": self.ack_samples,
            "inflight_peak": self.inflight_peak,
            "compression_ratio": self.compression_ratio,
        }
        out.update(self.extras)
        return out

    def chrome_counter_events(self, tid: int = 0, ts: float = 0.0) -> list[dict]:
        """Chrome trace-event counter samples for this endpoint."""
        label = f"transport {self.role} {self.peer}".strip()
        return [
            {
                "name": label,
                "ph": "C",
                "pid": 0,
                "tid": tid,
                "ts": ts,
                "args": {
                    "retries": self.retries,
                    "bytes_out": self.bytes_out,
                    "bytes_in": self.bytes_in,
                    "wire_bytes": self.wire_bytes,
                    "compression_ratio": round(self.compression_ratio, 3),
                    "queue_depth": self.max_queue_depth,
                    "ack_latency": self.ack_latency,
                    "inflight_peak": self.inflight_peak,
                },
            }
        ]


_registry_lock = threading.Lock()
_timelines: list[Timeline] = []


def new_transport_timeline(name: str) -> Timeline:
    """A fresh, registry-tracked timeline for one transport endpoint."""
    tl = Timeline(name)
    with _registry_lock:
        _timelines.append(tl)
    return tl


def transport_timelines() -> list[Timeline]:
    """Every transport timeline created since the last reset."""
    with _registry_lock:
        return list(_timelines)


def reset_transport_timelines() -> None:
    """Drop registered timelines (test/benchmark helper)."""
    with _registry_lock:
        _timelines.clear()
