"""The canonical trace format: versioned, sorted-key JSONL, no wall clock.

A *trace* is the deterministic record of one producer-side service
run: the traffic pattern (which tables each producer published at
which simulated time), the membership events (pipeline fins), the
canonicalized step observations and governor decisions, and the final
per-pipeline wire counters.  Everything in a trace is a pure function
of the run's seeds and configuration — wall-clock readings, thread
arrival order, and measured signals that carry scheduling jitter are
excluded *by construction*, so a trace recorded twice from the same
seeded run is byte-identical, and a replayed trace re-records to the
same bytes (the fixpoint property the golden-trace gate enforces).

Serialization is one JSON object per line with sorted keys and compact
separators: the header first, then every rank's event stream in
``(rank, seq)`` order, then the per-rank counters, then a footer with
the record counts.  Floats rely on JSON's shortest-round-trip ``repr``
so values survive a dump/load cycle bit-exactly; column payloads are
base64 of the raw little-endian bytes.

Canonicalization mirrors the determinism suites' contract:

- decision records drop the ``time`` stamp (transport-coupled
  decisions are logged at clock readings that carry sub-millisecond
  ack-arrival jitter) and normalize measured floats to 9 significant
  digits;
- ``flow`` decisions additionally drop the reason string and the
  measured-signal args (``retry_rate``, ``ack_latency``,
  ``inflight_peak``): ack latencies are measured across two ranks'
  clocks, so only the AIMD *trajectory* is contractual;
- step observations keep the fields that are pure functions of the
  seeds (step, payload/wire bytes, retries, compression ratio, codec)
  and drop the clock-coupled ones (``t``, ``ack_latency``,
  ``inflight_peak``, ``transfer_time``).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceFormatError, TraceVersionError
from repro.svtk.table import TableData

__all__ = [
    "TRACE_VERSION",
    "EVENT_KINDS",
    "TraceEvent",
    "Trace",
    "canonical_float",
    "canonical_decision",
    "canonical_observation",
    "encode_array",
    "decode_array",
    "encode_table",
    "decode_table",
]

#: Format version stamped into every header; bumped on any change to
#: the record schema.  Loading a trace with a different version raises
#: :class:`~repro.errors.TraceVersionError`.
TRACE_VERSION = 1

#: Per-rank stream record kinds, in the order they may appear.
EVENT_KINDS = ("publish", "fin", "obs", "decision")

#: Flow-governor decision args that quote measured (jittery) signals.
_FLOW_MEASURED = ("retry_rate", "ack_latency", "inflight_peak")

#: Step-observation fields that are pure functions of the run's seeds.
_OBS_FIELDS = ("payload_bytes", "wire_bytes", "retries")


def canonical_float(value: float) -> float:
    """A float normalized to 9 significant digits.

    Measured values (byte ratios, charged seconds) reproduce to ~1e-16
    relative between reruns; 9 significant digits is the determinism
    suites' canonical precision and is exact under JSON round-trip.
    """
    return float(f"{float(value):.9g}")


def canonical_decision(decision) -> dict:
    """A governor decision in canonical (replay-stable) form.

    Accepts a :class:`repro.control.governors.Decision` or its
    ``to_dict()`` form.  Drops the clock stamp, normalizes float args,
    and scrubs the flow governor's measured-signal context.
    """
    raw = decision if isinstance(decision, dict) else decision.to_dict()
    out = {
        "governor": str(raw["governor"]),
        "step": int(raw["step"]),
        "action": str(raw["action"]),
        "reason": str(raw["reason"]),
        "applied": bool(raw["applied"]),
    }
    args = {
        k: canonical_float(v) if isinstance(v, float) else v
        for k, v in sorted(dict(raw["args"]).items())
    }
    if out["governor"] == "flow":
        out.pop("reason", None)
        for key in _FLOW_MEASURED:
            args.pop(key, None)
    out["args"] = args
    return out


def canonical_observation(obs) -> dict:
    """A step observation reduced to its deterministic fields."""
    out = {"step": int(obs.step)}
    for name in _OBS_FIELDS:
        out[name] = int(getattr(obs, name, 0))
    out["ratio"] = canonical_float(getattr(obs, "compression_ratio", 1.0))
    extras = dict(getattr(obs, "extras", ()) or ())
    out["codec"] = str(extras.get("codec", ""))
    return out


def encode_array(values: np.ndarray) -> dict:
    """One 1-D column as dtype + base64 of its raw bytes (bit-exact)."""
    arr = np.ascontiguousarray(np.asarray(values))
    if arr.ndim != 1:
        raise TraceFormatError(
            f"trace columns are 1-D; got shape {arr.shape}"
        )
    little = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": str(arr.dtype.name),
        "data": base64.b64encode(little.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array` (a fresh writable array)."""
    try:
        dtype = np.dtype(payload["dtype"])
        raw = base64.b64decode(payload["data"], validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad column payload: {exc}") from None
    if dtype.itemsize and len(raw) % dtype.itemsize:
        raise TraceFormatError(
            f"column payload of {len(raw)} bytes is not a multiple of "
            f"{dtype} items"
        )
    return np.frombuffer(raw, dtype=dtype.newbyteorder("<")).astype(
        dtype, copy=True
    )


def encode_table(table: TableData) -> dict:
    """One table's columns, with insertion order preserved explicitly.

    Column order is wire-significant (it changes the serialized bytes
    and hence compressed sizes), and canonical JSON sorts object keys —
    so the order rides in its own list.
    """
    return {
        "order": list(table.column_names),
        "columns": {
            name: encode_array(table.column(name).as_numpy_host())
            for name in table.column_names
        },
    }


def decode_table(name: str, payload: dict) -> TableData:
    """Inverse of :func:`encode_table`."""
    try:
        order = list(payload["order"])
        columns = payload["columns"]
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"bad table payload: {exc}") from None
    table = TableData(name)
    for col in order:
        if col not in columns:
            raise TraceFormatError(
                f"table order names missing column {col!r}"
            )
        table.add_host_column(col, decode_array(columns[col]))
    return table


@dataclass(frozen=True)
class TraceEvent:
    """One record of a rank's event stream, in canonical form.

    ``body`` is the record's payload as sorted ``(key, value)`` tuples
    — the same structured-args shape governor decisions use, so the
    static analyzer's determinism rule (HL010) covers every function
    that feeds a trace record exactly as it covers decision paths.
    """

    kind: str
    rank: int
    seq: int
    body: tuple = ()

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise TraceFormatError(
                f"unknown trace event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "rank": self.rank, "seq": self.seq}
        out.update(self.body)
        return out


def _dump_record(record: dict) -> str:
    try:
        return json.dumps(
            record, sort_keys=True, separators=(",", ":"), allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"trace record is not canonically serializable: {exc}"
        ) from None


@dataclass
class Trace:
    """A parsed (or freshly recorded) trace: header, events, counters.

    ``events`` hold every per-rank stream record sorted by
    ``(rank, seq)``; ``counters`` the end-of-run per-pipeline wire
    counters sorted by ``(rank, pipeline)``.
    """

    header: dict
    events: list
    counters: list

    @property
    def version(self) -> int:
        return int(self.header.get("version", -1))

    @property
    def name(self) -> str:
        return str(self.header.get("name", ""))

    def rank_events(self, rank: int, kinds: tuple = EVENT_KINDS) -> list:
        """One rank's stream, in ``seq`` order, filtered by kind."""
        return [
            e for e in self.events
            if e["rank"] == rank and e["kind"] in kinds
        ]

    @property
    def ranks(self) -> tuple:
        return tuple(sorted({e["rank"] for e in self.events}))

    def records(self) -> list:
        """Every record in canonical file order (header ... footer)."""
        events = sorted(self.events, key=lambda e: (e["rank"], e["seq"]))
        counters = sorted(
            self.counters, key=lambda c: (c["rank"], c["pipeline"])
        )
        footer = {
            "kind": "footer",
            "events": len(events),
            "counters": len(counters),
        }
        return [self.header, *events, *counters, footer]

    def to_jsonl(self) -> str:
        """The canonical byte representation (newline-terminated)."""
        return "".join(_dump_record(r) + "\n" for r in self.records())

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Parse and validate a canonical trace; structured errors.

        Raises :class:`~repro.errors.TraceFormatError` on malformed
        content and :class:`~repro.errors.TraceVersionError` on a
        version-skewed header.
        """
        records = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"line {lineno}: invalid JSON: {exc}"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceFormatError(
                    f"line {lineno}: trace records are objects with a "
                    f"'kind' field"
                )
            records.append(record)
        if not records or records[0]["kind"] != "header":
            raise TraceFormatError("trace must begin with a header record")
        header = records[0]
        version = header.get("version")
        if version != TRACE_VERSION:
            raise TraceVersionError(
                f"trace version {version!r} is not supported "
                f"(this build reads version {TRACE_VERSION})",
                details={"found": version, "supported": TRACE_VERSION},
            )
        if records[-1]["kind"] != "footer":
            raise TraceFormatError("trace must end with a footer record")
        footer = records[-1]
        events, counters = [], []
        for record in records[1:-1]:
            kind = record["kind"]
            if kind in EVENT_KINDS:
                if not isinstance(record.get("rank"), int) or not isinstance(
                    record.get("seq"), int
                ):
                    raise TraceFormatError(
                        f"{kind} record needs integer rank/seq fields"
                    )
                events.append(record)
            elif kind == "counters":
                counters.append(record)
            else:
                raise TraceFormatError(f"unknown record kind {kind!r}")
        if footer.get("events") != len(events) or footer.get(
            "counters"
        ) != len(counters):
            raise TraceFormatError(
                "footer counts do not match the record stream "
                f"(footer {footer}, found {len(events)} events / "
                f"{len(counters)} counters)"
            )
        return cls(header=header, events=events, counters=counters)
