"""Deterministic trace record/replay for the in-transit service.

A recorded trace captures everything one seeded service run does on
the producer side — the published tables (exact bytes), the publish
cadence (simulated entry times), pipeline fins, the control plane's
canonical decisions and step observations, and the end-of-run wire
counters — in a versioned, sorted-key JSONL format with no wall-clock
content.  Replaying the trace pushes the identical traffic back
through :func:`repro.service.run_service`, and re-recording the replay
reproduces the trace byte-for-byte; CI pins golden traces on that
fixpoint so behavioral drift in the transport or control planes shows
up as a byte diff.

- :mod:`repro.trace.format` — the canonical record schema and the
  :class:`Trace` container;
- :mod:`repro.trace.configs` — round-trip config (de)serialization
  for the trace header;
- :mod:`repro.trace.recorder` — the ``run_service(recorder=...)`` tap;
- :mod:`repro.trace.replayer` — scripted replay + re-record;
- :mod:`repro.trace.harness` — the shared rerun/canonicalization
  scaffolding the determinism suites build on.
"""

from repro.trace.format import (
    EVENT_KINDS,
    TRACE_VERSION,
    Trace,
    TraceEvent,
    canonical_decision,
    canonical_float,
    canonical_observation,
    decode_array,
    decode_table,
    encode_array,
    encode_table,
)
from repro.trace.recorder import (
    RankSink,
    RecordingBridge,
    TraceRecorder,
    record_service_run,
)
from repro.trace.replayer import (
    ReplayResult,
    SinkAnalysis,
    diff_traces,
    replay_trace,
)
from repro.trace.harness import (
    canonical_decisions,
    fresh_substrate,
    rerun,
)

__all__ = [
    "TRACE_VERSION",
    "EVENT_KINDS",
    "Trace",
    "TraceEvent",
    "canonical_decision",
    "canonical_decisions",
    "canonical_float",
    "canonical_observation",
    "encode_array",
    "decode_array",
    "encode_table",
    "decode_table",
    "RankSink",
    "RecordingBridge",
    "TraceRecorder",
    "record_service_run",
    "ReplayResult",
    "SinkAnalysis",
    "replay_trace",
    "diff_traces",
    "fresh_substrate",
    "rerun",
]
