"""Trace recording: tap a live service run into a canonical trace.

The recorder threads through :func:`repro.service.run_service` (its
``recorder=`` parameter) with two touch points per producer rank:

- a :class:`RecordingBridge` proxy wraps the rank's
  :class:`~repro.service.router.ServiceBridge`, capturing each
  ``execute`` (step, simulated publish time, the exact column bytes of
  every published table) and each ``finish_pipeline`` before
  delegating — the *traffic pattern* the replayer feeds back;
- the rank's :class:`~repro.control.plan.ControlPlane` (when one is
  attached) mirrors every decision and step observation into the same
  per-rank stream via :meth:`~repro.control.plan.ControlPlane.attach_recorder`,
  already canonicalized (no clock stamps, no jittery measured args).

Each rank's stream is captured in program order under a per-rank
``seq`` counter; at finalize the per-pipeline wire counters (raw/wire
bytes, retries, chunks, simulated backoff seconds — all pure functions
of the fault seeds since the delivery-verdict retransmit scheduler)
are appended.  :meth:`TraceRecorder.trace` then assembles the
versioned header (name, metadata, topology, serialized configs) plus
the merged streams into a :class:`~repro.trace.format.Trace`.

``publish`` records carry the *absolute* simulated entry time of the
bridge call rather than a gap: the replayer restores cadence with
``clock.wait_for(entry)``, which is exact under floating point where
``advance(entry - prev)`` would not be.
"""

from __future__ import annotations

import threading

from repro.hamr.runtime import current_clock
from repro.svtk.table import TableData
from repro.trace.configs import (
    encode_control,
    encode_cost,
    encode_service,
)
from repro.trace.format import (
    TRACE_VERSION,
    Trace,
    TraceEvent,
    canonical_decision,
    canonical_observation,
    encode_table,
)

__all__ = ["RankSink", "RecordingBridge", "TraceRecorder", "record_service_run"]


class RankSink:
    """One producer rank's event stream, in program order.

    Implements the control plane's recorder protocol
    (``on_decision`` / ``on_observation``) and receives the bridge
    proxy's traffic events; every record is a
    :class:`~repro.trace.format.TraceEvent` stamped with this rank's
    monotone ``seq``.
    """

    def __init__(self, rank: int):
        self.rank = int(rank)
        self.events: list[TraceEvent] = []
        self.counters: list[dict] = []

    def emit(self, kind: str, **body) -> None:
        self.events.append(
            TraceEvent(
                kind=kind,
                rank=self.rank,
                seq=len(self.events),
                body=tuple(sorted(body.items())),
            )
        )

    # -- control-plane recorder protocol ---------------------------------------
    def on_decision(self, decision) -> None:
        self.emit("decision", **canonical_decision(decision))

    def on_observation(self, obs, origin: str = "transport") -> None:
        self.emit("obs", origin=str(origin), **canonical_observation(obs))

    # -- end-of-run counters ----------------------------------------------------
    def add_counters(self, pipeline: str, metrics: dict) -> None:
        row = {"kind": "counters", "rank": self.rank, "pipeline": pipeline}
        for key in sorted(metrics):
            value = metrics[key]
            row[key] = float(value) if isinstance(value, float) else int(value)
        self.counters.append(row)


class RecordingBridge:
    """A transparent proxy capturing one rank's bridge traffic.

    Everything not intercepted (metrics, control plane, the router)
    passes straight through, so producer code runs unmodified whether
    or not a recorder is attached.
    """

    def __init__(self, inner, sink: RankSink):
        self._inner = inner
        self._sink = sink
        self._counters_taken = False
        plane = getattr(inner, "control_plane", None)
        if plane is not None:
            plane.attach_recorder(sink)

    def execute(self, data) -> bool:
        meshes = {}
        for name in sorted(data.get_mesh_names()):
            mesh = data.get_mesh(name)
            if isinstance(mesh, TableData):
                meshes[name] = encode_table(mesh)
        self._sink.emit(
            "publish",
            step=int(data.time_step),
            sim_time=float(data.time),
            entry=current_clock().now,
            meshes=meshes,
        )
        return self._inner.execute(data)

    def finish_pipeline(self, name: str) -> None:
        self._sink.emit(
            "fin", pipeline=str(name), entry=current_clock().now,
        )
        return self._inner.finish_pipeline(name)

    def inject(self, record: dict) -> None:
        """Re-emit a scripted record into this rank's stream.

        The replayer uses this for events the replay cannot regenerate
        live — workload-side decisions and in situ observations (the
        workload itself does not run under replay); the event lands at
        this rank's current ``seq``, restoring the recorded
        interleaving.
        """
        body = {
            k: v for k, v in record.items()
            if k not in ("kind", "rank", "seq")
        }
        self._sink.emit(record["kind"], **body)

    def finalize(self) -> None:
        try:
            return self._inner.finalize()
        finally:
            if not self._counters_taken and self._inner.router is not None:
                self._counters_taken = True
                for name in self._inner.config.names:
                    self._sink.add_counters(
                        name, self._inner.pipeline_metrics(name)
                    )

    def __getattr__(self, item):
        return getattr(self._inner, item)


class TraceRecorder:
    """Collects every producer rank's stream into one canonical trace.

    Pass one instance as ``run_service(..., recorder=...)`` (or
    through :func:`record_service_run`, which also stamps the header);
    ``bind`` is invoked once per producer thread and is the only
    concurrent entry point, so a single lock over sink registration
    suffices — each rank then writes only its own sink.
    """

    def __init__(self, name: str, meta: dict | None = None):
        self.name = str(name)
        self.meta = dict(meta or {})
        self._sinks: dict[int, RankSink] = {}
        self._lock = threading.Lock()
        self._topology: dict = {}

    def describe(self, config, m: int, n: int, cost=None, control=None) -> None:
        """Record the run configuration the header embeds."""
        self._topology = {
            "m": int(m),
            "n": int(n),
            "service": encode_service(config),
            "cost": None if cost is None else encode_cost(cost),
            "control": None if control is None else encode_control(control),
        }

    def bind(self, rank: int, bridge):
        """Wrap one producer rank's bridge (run_service's hook)."""
        with self._lock:
            sink = self._sinks.get(rank)
            if sink is None:
                sink = RankSink(rank)
                self._sinks[rank] = sink
        return RecordingBridge(bridge, sink)

    def trace(self) -> Trace:
        """Assemble the canonical trace from every rank's stream."""
        header = {
            "kind": "header",
            "version": TRACE_VERSION,
            "name": self.name,
            "meta": self.meta,
        }
        header.update(self._topology)
        events, counters = [], []
        for rank in sorted(self._sinks):
            sink = self._sinks[rank]
            events.extend(e.to_dict() for e in sink.events)
            counters.extend(sink.counters)
        return Trace(header=header, events=events, counters=counters)


def record_service_run(
    name,
    config,
    producer_main,
    registry=None,
    m: int = 1,
    n: int = 1,
    cost=None,
    control=None,
    load_board=None,
    meta: dict | None = None,
):
    """Run a service and record its canonical trace in one call.

    Same signature surface as :func:`repro.service.run_service` plus a
    trace ``name`` and optional header ``meta`` (seeds, workload
    parameters — anything the reader needs to reproduce the run).
    Returns ``(trace, producer_results, endpoints)``.
    """
    from repro.service.runtime import run_service

    recorder = TraceRecorder(name, meta=meta)
    recorder.describe(config, m, n, cost=cost, control=control)
    producers, endpoints = run_service(
        config,
        producer_main,
        registry,
        m=m,
        n=n,
        cost=cost,
        control=control,
        load_board=load_board,
        recorder=recorder,
    )
    return recorder.trace(), producers, endpoints
