"""Shared harness for determinism suites and trace-gated tests.

Every determinism test has the same skeleton: scrub the process-global
substrate state (node, streams, pools, clock, active device), run a
seeded scenario, scrub again, run it again, and compare canonical
logs.  Before :mod:`repro.trace` landed each suite hand-rolled that
scaffolding plus its own decision-canonicalization helper; this module
is the single copy they now share, and the golden-trace tests reuse it
to re-record fixtures under identical conditions.
"""

from __future__ import annotations

from repro.hamr.pool import reset_pools
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node
from repro.trace.format import canonical_decision, canonical_float

__all__ = [
    "fresh_substrate",
    "rerun",
    "canonical_decision",
    "canonical_decisions",
    "canonical_float",
]


def fresh_substrate(name: str = "determinism") -> None:
    """Scrub the process-global substrate state by hand.

    Equivalent to the per-test ``clean_substrate`` fixture, for code
    that runs a scenario *multiple times inside one test* (reruns,
    record-then-replay): node, default streams, pools, a fresh
    ``SimClock`` at zero, active device 0.
    """
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


def rerun(scenario, times: int = 2, name: str = "determinism") -> list:
    """Run ``scenario()`` ``times`` times, each from a fresh substrate.

    Returns the per-run results; determinism suites assert the
    canonical forms are equal across entries.
    """
    out = []
    for _ in range(times):
        fresh_substrate(name)
        out.append(scenario())
    return out


def canonical_decisions(decisions) -> list:
    """Canonicalize a decision log (see :func:`canonical_decision`)."""
    return [canonical_decision(d) for d in decisions]
