"""Round-trip (de)serialization of the run configuration a trace needs.

The trace header embeds everything the replayer must reconstruct to
push the recorded traffic back through ``run_service`` bit-identically:
the service topology (pipelines with their transport wires), the
interconnect cost model, and the control-plane configuration.  Every
encoder here is a pure field-by-field mapping of the frozen config
dataclasses, and ``encode(decode(x)) == encode(x)`` exactly — the
property the record→replay→re-record fixpoint rests on.
"""

from __future__ import annotations

from repro.control.governors import FlowBounds
from repro.control.plan import ControlConfig, GovernorSetting
from repro.errors import TraceFormatError
from repro.mpi.comm import CommCostModel
from repro.service.plan import PipelineSpec, ServiceConfig
from repro.transport.channel import FaultSpec
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy

__all__ = [
    "encode_cost",
    "decode_cost",
    "encode_control",
    "decode_control",
    "encode_transport",
    "decode_transport",
    "encode_service",
    "decode_service",
]


def _decode(kind: str, builder, payload: dict):
    """Run a config constructor, wrapping failures as trace errors."""
    try:
        return builder(**payload)
    except Exception as exc:
        raise TraceFormatError(
            f"trace header carries an invalid {kind} config: {exc}",
            details={"section": kind},
        ) from exc


def encode_cost(cost: CommCostModel | None) -> dict | None:
    if cost is None:
        return None
    return {
        "latency": float(cost.latency),
        "bandwidth": float(cost.bandwidth),
        "barrier_cost": float(cost.barrier_cost),
    }


def _as_mapping(kind: str, payload) -> dict:
    """The payload as a dict, with structured failure on type skew."""
    try:
        return dict(payload)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"trace header carries a non-mapping {kind} config: {exc}",
            details={"section": kind},
        ) from exc


def decode_cost(payload: dict | None) -> CommCostModel | None:
    if payload is None:
        return None
    return _decode("cost", CommCostModel, _as_mapping("cost", payload))


def encode_control(config: ControlConfig | None) -> dict | None:
    if config is None:
        return None
    fb = config.flow_bounds
    return {
        "enabled": bool(config.enabled),
        "seed": int(config.seed),
        "interval": int(config.interval),
        "window": int(config.window),
        "codec": config.codec.value,
        "execution": config.execution.value,
        "placement": config.placement.value,
        "pool": config.pool.value,
        "flow": config.flow.value,
        "quota": config.quota.value,
        "repartition": config.repartition.value,
        "repartition_skew": float(config.repartition_skew),
        "repartition_cooldown": int(config.repartition_cooldown),
        "pool_growth": bool(config.pool_growth),
        "flow_bounds": {
            "min_credits": int(fb.min_credits),
            "max_credits": int(fb.max_credits),
            "min_chunk": int(fb.min_chunk),
            "max_chunk": int(fb.max_chunk),
        },
        "mode_low": float(config.mode_low),
        "mode_high": float(config.mode_high),
        "codec_margin": float(config.codec_margin),
        "overload": float(config.overload),
        "pool_watermark_kib": (
            None if config.pool_watermark_kib is None
            else float(config.pool_watermark_kib)
        ),
        "coordination": str(config.coordination),
        "coordination_interval": int(config.coordination_interval),
    }


def decode_control(payload: dict | None) -> ControlConfig | None:
    if payload is None:
        return None
    fields = _as_mapping("control", payload)
    try:
        for name in (
            "codec", "execution", "placement", "pool", "flow", "quota",
            "repartition",
        ):
            fields[name] = GovernorSetting.parse(fields[name])
        fields["flow_bounds"] = FlowBounds(**fields["flow_bounds"])
    except Exception as exc:
        raise TraceFormatError(
            f"trace header carries an invalid control config: {exc}",
            details={"section": "control"},
        ) from exc
    return _decode("control", ControlConfig, fields)


def encode_transport(config: TransportConfig) -> dict:
    retry, faults = config.retry, config.faults
    return {
        "compression": str(config.compression),
        "chunk_bytes": int(config.chunk_bytes),
        "max_inflight": int(config.max_inflight),
        "partitioner": str(config.partitioner),
        "recv_timeout": float(config.recv_timeout),
        "pipelined": bool(config.pipelined),
        "retry": {
            "max_retries": int(retry.max_retries),
            "ack_timeout": float(retry.ack_timeout),
            "backoff_base": float(retry.backoff_base),
            "backoff_factor": float(retry.backoff_factor),
            "backoff_max": float(retry.backoff_max),
            "jitter": float(retry.jitter),
        },
        "faults": {
            "drop": float(faults.drop),
            "duplicate": float(faults.duplicate),
            "reorder": float(faults.reorder),
            "corrupt": float(faults.corrupt),
            "seed": int(faults.seed),
            "congestion_bytes": int(faults.congestion_bytes),
            "congestion_drop": float(faults.congestion_drop),
        },
    }


def decode_transport(payload: dict) -> TransportConfig:
    fields = _as_mapping("transport", payload)
    try:
        fields["retry"] = RetryPolicy(**fields["retry"])
        fields["faults"] = FaultSpec(**fields["faults"])
    except Exception as exc:
        raise TraceFormatError(
            f"trace header carries an invalid transport config: {exc}",
            details={"section": "transport"},
        ) from exc
    return _decode("transport", TransportConfig, fields)


def encode_service(config: ServiceConfig) -> dict:
    return {
        "budget": int(config.budget),
        "min_credits": int(config.min_credits),
        "skew": float(config.skew),
        "cooldown": int(config.cooldown),
        "interval": int(config.interval),
        "pipelines": [
            {
                "name": spec.name,
                "mesh": spec.mesh,
                "weight": float(spec.weight),
                "shard_size": int(spec.shard_size),
                "partitioner": str(spec.partitioner),
                "producer_weights": (
                    None if spec.producer_weights is None
                    else [float(w) for w in spec.producer_weights]
                ),
                "ranks": (
                    None if spec.ranks is None
                    else [int(r) for r in spec.ranks]
                ),
                "collective": bool(spec.collective),
                "transport": encode_transport(spec.transport),
            }
            for spec in config.pipelines
        ],
    }


def decode_service(payload: dict) -> ServiceConfig:
    fields = _as_mapping("service", payload)
    try:
        pipelines = []
        for raw in fields.pop("pipelines"):
            spec = dict(raw)
            spec["transport"] = decode_transport(spec["transport"])
            if spec.get("producer_weights") is not None:
                spec["producer_weights"] = tuple(spec["producer_weights"])
            if spec.get("ranks") is not None:
                spec["ranks"] = tuple(spec["ranks"])
            pipelines.append(_decode("pipeline", PipelineSpec, spec))
        fields["pipelines"] = tuple(pipelines)
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(
            f"trace header carries an invalid service config: {exc}",
            details={"section": "service"},
        ) from exc
    return _decode("service", ServiceConfig, fields)
