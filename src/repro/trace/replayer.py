"""Trace replay: feed a recorded run back through the live service.

:func:`replay_trace` reconstructs the recorded run's configuration
from the trace header (via :mod:`repro.trace.configs`), then launches
``run_service`` with a *scripted* producer: each producer rank walks
its recorded event stream in ``seq`` order, restores the recorded
publish cadence with ``clock.wait_for(entry)`` (exact — the recorder
stores absolute simulated entry times, not gaps), rebuilds each
published table bit-exactly from the recorded column bytes, and
replays ``finish_pipeline`` calls at their recorded clock readings.

Because every ingredient of the original run is a pure function of
what the trace carries — configs, seeds, payload bytes, cadence — the
replay's decisions, observations, retry counts, and simulated
timestamps re-record to the *byte-identical* trace.  That fixpoint
(``replay(record(run)) re-records to record(run)``) is what the
golden-trace regression gate checks in CI.

The replay runs real analyses only if the caller passes a registry;
by default every pipeline gets a :class:`SinkAnalysis` that validates
the merged tables arrive but does no numerics, keeping the gate about
the transport/control planes rather than back-end math.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceFormatError
from repro.hamr.runtime import current_clock
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.trace.configs import decode_control, decode_cost, decode_service
from repro.trace.format import Trace, decode_table
from repro.trace.recorder import TraceRecorder

__all__ = ["SinkAnalysis", "ReplayResult", "replay_trace", "diff_traces"]

#: Governors whose decisions the replay *regenerates* live: they are
#: driven entirely by the transport path the replay re-executes (codec
#: and flow from the per-step transport tap, quota and shard from the
#: service bridge's coordination rounds).  Every other governor is
#: driven by workload-side state that does not run under replay
#: (in situ bridges, pools, device loads, array repartitioning); its
#: recorded decisions are re-injected from the script instead.
_REPLAYED_GOVERNORS = frozenset({"codec", "flow", "quota", "shard"})


def _regenerated(event: dict) -> bool:
    """Will the live replay re-emit this recorded event itself?"""
    if event["kind"] == "obs":
        return event.get("origin", "transport") == "transport"
    if event["kind"] == "decision":
        return event["governor"] in _REPLAYED_GOVERNORS
    return False


class SinkAnalysis(AnalysisAdaptor):
    """An endpoint back-end that consumes merged steps and counts them."""

    def __init__(self, name: str = "sink"):
        super().__init__(name)
        self.set_device_id(-1)
        self.steps_seen = 0

    def acquire(self, data, deep: bool):
        self.steps_seen += 1
        return None

    def process(self, payload, comm, device_id: int) -> None:
        pass


@dataclass
class ReplayResult:
    """What a replay produced: the re-recorded trace plus the run."""

    trace: Trace
    producers: list = field(default_factory=list)
    endpoints: list = field(default_factory=list)


def _field(event: dict, key: str, conv):
    """A typed event field, with structured failure on skew."""
    try:
        return conv(event[key])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{event.get('kind', '?')} event (rank {event.get('rank')}, "
            f"seq {event.get('seq')}) has a bad {key!r} field: {exc}",
            details={
                "kind": event.get("kind"),
                "rank": event.get("rank"),
                "seq": event.get("seq"),
                "field": key,
            },
        ) from exc


def _producer_scripts(trace: Trace, m: int) -> dict[int, list]:
    """Each producer rank's validated op stream, in recorded order.

    Field conversion (and table decoding) happens here, in the calling
    thread, so a malformed trace fails as a :class:`TraceFormatError`
    before any producer launches — not as a wrapped SPMD rank failure.
    """
    scripts: dict[int, list] = {rank: [] for rank in range(m)}
    for event in sorted(trace.events, key=lambda e: (e["rank"], e["seq"])):
        if event["rank"] not in scripts:
            continue
        kind = event["kind"]
        if kind == "fin":
            op = (
                "fin",
                _field(event, "entry", float),
                _field(event, "pipeline", str),
            )
        elif kind == "publish":
            meshes = _field(event, "meshes", dict)
            op = (
                "publish",
                _field(event, "entry", float),
                _field(event, "step", int),
                _field(event, "sim_time", float),
                {m_: decode_table(m_, meshes[m_]) for m_ in sorted(meshes)},
            )
        elif _regenerated(event):
            continue  # the live replay re-emits this one itself
        else:
            op = ("inject", event)
        scripts[event["rank"]].append(op)
    return scripts


def replay_trace(trace, registry=None) -> ReplayResult:
    """Replay a recorded trace and re-record it (the fixpoint check).

    ``trace`` is a :class:`~repro.trace.format.Trace` or its JSONL
    text.  Returns a :class:`ReplayResult` whose ``trace`` should be
    byte-identical (``.to_jsonl()``) to the input when the input was
    itself recorded from a seeded run.
    """
    if isinstance(trace, str):
        trace = Trace.from_jsonl(trace)
    header = trace.header
    config = decode_service(header["service"])
    cost = decode_cost(header.get("cost"))
    control = decode_control(header.get("control"))
    try:
        m, n = int(header["m"]), int(header["n"])
        if m < 1 or n < 1:
            raise ValueError(f"m={m}, n={n} must both be >= 1")
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"trace header has a bad topology: {exc}",
            details={"section": "topology"},
        ) from exc
    scripts = _producer_scripts(trace, m)
    if registry is None:
        registry = {
            name: (lambda: [SinkAnalysis()]) for name in config.names
        }

    def producer_main(sim_comm, bridge):
        clk = current_clock()
        for op in scripts.get(sim_comm.rank, ()):
            if op[0] == "fin":
                _kind, entry, pipeline = op
                clk.wait_for(entry)
                bridge.finish_pipeline(pipeline)
            elif op[0] == "publish":
                _kind, entry, step, sim_time, tables = op
                clk.wait_for(entry)
                # Fresh adaptor per publish: a mesh absent from this
                # step's record must not linger from an earlier one.
                adaptor = TableDataAdaptor(comm=sim_comm)
                for mesh, table in tables.items():
                    adaptor.set_table(mesh, table)
                adaptor.set_step(step, sim_time)
                bridge.execute(adaptor)
            else:
                bridge.inject(op[1])
        return sim_comm.rank

    recorder = TraceRecorder(trace.name, meta=dict(header.get("meta", {})))
    recorder.describe(config, m, n, cost=cost, control=control)
    from repro.service.runtime import run_service

    producers, endpoints = run_service(
        config,
        producer_main,
        registry,
        m=m,
        n=n,
        cost=cost,
        control=control,
        recorder=recorder,
    )
    return ReplayResult(
        trace=recorder.trace(), producers=producers, endpoints=endpoints
    )


def diff_traces(a: Trace, b: Trace, limit: int = 20) -> list[str]:
    """Human-readable record-level differences between two traces.

    Empty when the traces are byte-identical; otherwise up to ``limit``
    lines naming the first diverging records — the error message the
    golden gate prints when a trace drifts.
    """
    lines_a = a.to_jsonl().splitlines()
    lines_b = b.to_jsonl().splitlines()
    out = []
    for i in range(max(len(lines_a), len(lines_b))):
        if len(out) >= limit:
            out.append("... (diff truncated)")
            break
        ra = lines_a[i] if i < len(lines_a) else "<missing>"
        rb = lines_b[i] if i < len(lines_b) else "<missing>"
        if ra != rb:
            out.append(f"record {i}: {ra!r} != {rb!r}")
    return out
