"""Tabular datasets — columns of data arrays.

"Given tabular data where columns represent different variables and
rows represent co-occurring measurements or realizations of these
variables ..." (paper Section 4.2).  :class:`TableData` is that
container: an ordered mapping of column name to
:class:`~repro.svtk.data_array.DataArray`, with all columns sharing one
row count.  It is the shape the Newton++ data adaptor publishes (one
row per body) and the shape the binning analysis consumes.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.errors import ShapeMismatchError
from repro.svtk.data_array import DataArray, HostDataArray

__all__ = ["TableData"]


class TableData:
    """An ordered collection of equally long, named columns."""

    def __init__(self, name: str = "table"):
        self.name = str(name)
        self._columns: dict[str, DataArray] = {}

    # -- mutation -------------------------------------------------------------
    def add_column(self, array: DataArray) -> None:
        """Add ``array`` as a column, validating the shared row count."""
        if array.n_components != 1:
            raise ShapeMismatchError(
                f"table columns are scalar; {array.name!r} has "
                f"{array.n_components} components"
            )
        if self._columns:
            n = self.n_rows
            if array.n_tuples != n:
                raise ShapeMismatchError(
                    f"column {array.name!r} has {array.n_tuples} rows, "
                    f"table has {n}"
                )
        if array.name in self._columns:
            raise ShapeMismatchError(f"duplicate column name {array.name!r}")
        self._columns[array.name] = array

    def add_host_column(self, name: str, values: np.ndarray) -> HostDataArray:
        """Convenience: wrap host values in a column."""
        col = HostDataArray(name, np.asarray(values))
        self.add_column(col)
        return col

    def remove_column(self, name: str) -> DataArray:
        try:
            return self._columns.pop(name)
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    # -- access ----------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        if not self._columns:
            return 0
        return next(iter(self._columns.values())).n_tuples

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column(self, name: str) -> DataArray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> DataArray:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def items(self) -> Mapping[str, DataArray]:
        return dict(self._columns)

    def synchronize(self) -> None:
        """Synchronize every column."""
        for col in self._columns.values():
            col.synchronize()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableData({self.name!r}, rows={self.n_rows}, "
            f"columns={list(self._columns)})"
        )
