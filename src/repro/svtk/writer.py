"""Host-only writers — the ``libB`` of the paper's Listing 4.

Writers consume any data array through :meth:`get_host_accessible`
only: "Any host-device data movement is handled automatically and
invisibly to libB if it is needed."  They never inspect allocators or
device ordinals, demonstrating PM/location-agnostic consumption.

Formats:

- legacy-ASCII VTK ``STRUCTURED_POINTS`` for uniform meshes (loadable
  by ParaView/VisIt for post hoc visualization);
- legacy-ASCII VTK ``POLYDATA`` point clouds for particle data
  (Newton++'s "VTK compatible output format");
- CSV for tables.
"""

from __future__ import annotations

import os
from typing import IO, Iterable

import numpy as np

from repro.svtk.data_array import DataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.table import TableData

__all__ = ["write_vtk_image", "write_vtk_particles", "write_csv_table"]


def _host_values(array: DataArray) -> np.ndarray:
    """Stage an array to the host the way Listing 4 does."""
    view = array.get_host_accessible()
    array.synchronize()
    values = np.array(view.get(), copy=True)
    view.release()
    return values


def write_vtk_image(mesh: UniformCartesianMesh, path: str | os.PathLike) -> None:
    """Write a uniform mesh with its cell data as legacy-ASCII VTK."""
    # Pad missing axes as single-*point* planes (0 cells -> 1 point), so
    # point and cell counts both match the original mesh exactly.
    dims = list(mesh.dims) + [0] * (3 - mesh.ndim)
    origin = list(mesh.origin) + [0.0] * (3 - mesh.ndim)
    spacing = list(mesh.spacing) + [1.0] * (3 - mesh.ndim)
    with open(path, "w", encoding="ascii") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write(f"{mesh.name}\n")
        f.write("ASCII\n")
        f.write("DATASET STRUCTURED_POINTS\n")
        # STRUCTURED_POINTS dimensions are point counts: cells + 1.
        f.write(f"DIMENSIONS {dims[0] + 1} {dims[1] + 1} {dims[2] + 1}\n")
        f.write(f"ORIGIN {origin[0]} {origin[1]} {origin[2]}\n")
        f.write(f"SPACING {spacing[0]} {spacing[1]} {spacing[2]}\n")
        if mesh.point_array_names:
            f.write(f"POINT_DATA {mesh.n_points}\n")
            for name in mesh.point_array_names:
                arr = mesh.point_array(name)
                values = _host_values(arr)
                f.write(
                    f"SCALARS {_sanitize(name)} {_vtk_type(values.dtype)} "
                    f"{arr.n_components}\n"
                )
                f.write("LOOKUP_TABLE default\n")
                _write_values(f, values)
        f.write(f"CELL_DATA {mesh.n_cells}\n")
        for name in mesh.cell_array_names:
            arr = mesh.cell_array(name)
            values = _host_values(arr)
            vtk_type = _vtk_type(values.dtype)
            f.write(f"SCALARS {_sanitize(name)} {vtk_type} {arr.n_components}\n")
            f.write("LOOKUP_TABLE default\n")
            _write_values(f, values)


def write_vtk_particles(
    positions: Iterable[DataArray], path: str | os.PathLike,
    attributes: Iterable[DataArray] = (),
) -> None:
    """Write particles as legacy-ASCII VTK POLYDATA.

    ``positions`` supplies 1-3 coordinate arrays (x, y, z); missing axes
    are zero-filled.  ``attributes`` become POINT_DATA scalars.
    """
    coords = [_host_values(p) for p in positions]
    if not 1 <= len(coords) <= 3:
        raise ValueError(f"positions must supply 1-3 axes, got {len(coords)}")
    n = coords[0].size
    for c in coords[1:]:
        if c.size != n:
            raise ValueError("coordinate arrays must be equally long")
    while len(coords) < 3:
        coords.append(np.zeros(n))
    xyz = np.column_stack(coords)
    with open(path, "w", encoding="ascii") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write("particles\n")
        f.write("ASCII\n")
        f.write("DATASET POLYDATA\n")
        f.write(f"POINTS {n} double\n")
        for row in xyz:
            f.write(f"{row[0]:.10g} {row[1]:.10g} {row[2]:.10g}\n")
        attrs = list(attributes)
        if attrs:
            f.write(f"POINT_DATA {n}\n")
            for arr in attrs:
                values = _host_values(arr)
                if values.size != n:
                    raise ValueError(
                        f"attribute {arr.name!r} has {values.size} values, "
                        f"expected {n}"
                    )
                f.write(f"SCALARS {_sanitize(arr.name)} {_vtk_type(values.dtype)} 1\n")
                f.write("LOOKUP_TABLE default\n")
                _write_values(f, values)


def write_csv_table(table: TableData, path: str | os.PathLike) -> None:
    """Write a table as CSV (header row of column names)."""
    names = table.column_names
    columns = [_host_values(table.column(c)) for c in names]
    with open(path, "w", encoding="ascii") as f:
        f.write(",".join(names) + "\n")
        if columns:
            for row in zip(*columns):
                f.write(",".join(f"{v:.10g}" for v in row) + "\n")


def _vtk_type(dtype: np.dtype) -> str:
    kind = np.dtype(dtype)
    if kind == np.float64:
        return "double"
    if kind == np.float32:
        return "float"
    if kind.kind in "iu":
        return "long" if kind.itemsize == 8 else "int"
    raise ValueError(f"unsupported dtype for VTK output: {dtype}")


def _sanitize(name: str) -> str:
    """VTK scalar names cannot contain whitespace."""
    return "_".join(str(name).split())


def _write_values(f: IO[str], values: np.ndarray, per_line: int = 9) -> None:
    flat = values.reshape(-1)
    for i in range(0, flat.size, per_line):
        chunk = flat[i : i + per_line]
        f.write(" ".join(f"{v:.10g}" for v in chunk) + "\n")
