"""The ``svtkDataArray`` abstraction and the stock host-only subclass.

In the SENSEI data model the abstract ``svtkDataArray`` defines the
interfaces for managing and accessing array-based data; mesh geometry
and node/cell-centered data are built on top of it.  The subclasses
available in stock VTK are designed for host-only memory management —
:class:`HostDataArray` reproduces that baseline, and
:mod:`repro.svtk.hamr_array` adds the heterogeneous subclass the paper
contributes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ShapeMismatchError, UninitializedArrayError
from repro.hamr.view import SharedView
from repro.hw.clock import SimClock

__all__ = ["DataArray", "HostDataArray"]


class DataArray(ABC):
    """Abstract base for named, tuple-structured arrays.

    An array holds ``n_tuples`` tuples of ``n_components`` scalar
    components (VTK's layout).  Subclasses decide where the bytes live;
    consumers that need portable access go through
    :meth:`get_host_accessible` and friends.
    """

    def __init__(self, name: str, n_components: int = 1):
        if n_components < 1:
            raise ShapeMismatchError(f"n_components must be >= 1: {n_components}")
        self.name = str(name)
        self._n_components = int(n_components)

    # -- shape -----------------------------------------------------------------
    @property
    def n_components(self) -> int:
        return self._n_components

    @property
    @abstractmethod
    def n_tuples(self) -> int:
        """Number of tuples (``GetNumberOfTuples``)."""

    @property
    def n_values(self) -> int:
        return self.n_tuples * self.n_components

    @property
    @abstractmethod
    def dtype(self) -> np.dtype:
        """Component scalar type."""

    # -- access ------------------------------------------------------------------
    @abstractmethod
    def get_host_accessible(self) -> SharedView:
        """A view of the data readable on the host.

        If the data is already host-resident the view is zero-copy;
        otherwise a managed temporary is created and the data moved.
        Callers must :meth:`synchronize` before dereferencing if the
        array operates asynchronously.
        """

    @abstractmethod
    def synchronize(self, clock: SimClock | None = None) -> float:
        """Wait for in-flight operations on this array to complete."""

    # -- convenience -----------------------------------------------------------
    def as_numpy_host(self) -> np.ndarray:
        """Synchronized host copy/view shaped ``(n_tuples, n_components)``.

        Convenience for analysis and test code; production consumers use
        the view API to control temporary lifetime explicitly.
        """
        view = self.get_host_accessible()
        self.synchronize()
        arr = view.get()
        if self.n_components > 1:
            arr = arr.reshape(self.n_tuples, self.n_components)
        # Take a copy if the view owns a temporary that would die with it.
        return np.array(arr, copy=True) if view.is_temporary else arr

    def __len__(self) -> int:
        return self.n_tuples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, n_tuples={self.n_tuples}, "
            f"n_components={self.n_components}, dtype={self.dtype})"
        )


class HostDataArray(DataArray):
    """The stock VTK-style, host-only data array.

    Exists as the baseline the HDA extends — and so that tests can
    demonstrate what the extension buys: this class cannot represent
    device-resident data at all.
    """

    def __init__(self, name: str, data: np.ndarray, n_components: int = 1):
        super().__init__(name, n_components)
        data = np.ascontiguousarray(data)
        if data.ndim == 2:
            if data.shape[1] != n_components:
                raise ShapeMismatchError(
                    f"2-D input has {data.shape[1]} components, expected {n_components}"
                )
            data = data.reshape(-1)
        elif data.ndim != 1:
            raise ShapeMismatchError(f"expected 1-D or 2-D data, got ndim={data.ndim}")
        if data.size % n_components:
            raise ShapeMismatchError(
                f"{data.size} values not divisible by {n_components} components"
            )
        self._data = data

    @classmethod
    def empty(cls, name: str, n_tuples: int, n_components: int = 1, dtype=np.float64):
        return cls(
            name, np.empty(int(n_tuples) * int(n_components), dtype=dtype), n_components
        )

    @property
    def n_tuples(self) -> int:
        return self._data.size // self._n_components

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def data(self) -> np.ndarray:
        return self._data

    def get_host_accessible(self) -> SharedView:
        # Host arrays are trivially accessible in place; reuse SharedView
        # so consumers are agnostic to the array subclass.
        return SharedView(self._data)

    def synchronize(self, clock: SimClock | None = None) -> float:
        if self._data is None:  # pragma: no cover - cannot happen post-init
            raise UninitializedArrayError(self.name)
        return 0.0
