"""``svtkHAMRDataArray`` — the paper's data-model extension.

The HDA provides both host and device memory management as well as
programming-model interoperability, via the HAMR layer
(:mod:`repro.hamr`).  The API mirrors the paper's listings:

- construction for a particular PM/allocation strategy, optionally on a
  stream with an explicit synchronization mode (Listing 1, line 15);
- zero-copy construction around externally allocated host or device
  memory with coordinated life-cycle management (Listing 1);
- PM- and location-agnostic read access —
  :meth:`HAMRDataArray.get_cuda_accessible`,
  :meth:`~HAMRDataArray.get_hip_accessible`,
  :meth:`~HAMRDataArray.get_openmp_accessible`,
  :meth:`~HAMRDataArray.get_host_accessible` (Listings 3 and 4): direct
  access when the data is already accessible, an automatically managed
  temporary plus move otherwise;
- direct access (:meth:`~HAMRDataArray.get_data`) when location and PM
  are known (Listing 3, line 24);
- explicit synchronization (:meth:`~HAMRDataArray.synchronize`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ShapeMismatchError, UninitializedArrayError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock, get_active_device
from repro.hamr.stream import Stream, StreamMode
from repro.hamr.view import SharedView, accessible_view
from repro.hw.clock import SimClock
from repro.svtk.data_array import DataArray

__all__ = [
    "HAMRDataArray",
    "HAMRDoubleArray",
    "HAMRFloatArray",
    "HAMRInt64Array",
]


class HAMRDataArray(DataArray):
    """Heterogeneous-architecture data array (the HDA).

    Instances are created with :meth:`new` (allocating) or
    :meth:`zero_copy` (wrapping existing memory).  A default-constructed
    instance is *uninitialized*; :meth:`initialize` gives it storage, as
    the paper's API allows ("APIs exist to initialize a default
    constructed instance as well").
    """

    #: Subclasses may pin the component type (``svtkHAMRDoubleArray``...).
    fixed_dtype: np.dtype | None = None

    def __init__(self, name: str = "", n_components: int = 1):
        super().__init__(name, n_components)
        self._buffer: Buffer | None = None

    # -- construction -----------------------------------------------------------
    @classmethod
    def new(
        cls,
        name: str,
        n_tuples: int,
        n_components: int = 1,
        allocator: Allocator = Allocator.MALLOC,
        stream: Stream | None = None,
        stream_mode: StreamMode = StreamMode.SYNC,
        device_id: int | None = None,
        dtype=None,
    ) -> "HAMRDataArray":
        """Allocate a new array for a particular PM/allocation strategy.

        Device allocators place memory on the currently active device
        unless ``device_id`` says otherwise.  With an asynchronous
        ``stream_mode`` the call returns while the allocation is in
        flight.
        """
        arr = cls(name, n_components)
        arr.initialize(
            n_tuples,
            allocator=allocator,
            stream=stream,
            stream_mode=stream_mode,
            device_id=device_id,
            dtype=dtype,
        )
        return arr

    @classmethod
    def zero_copy(
        cls,
        name: str,
        data: np.ndarray,
        n_components: int = 1,
        allocator: Allocator = Allocator.MALLOC,
        stream: Stream | None = None,
        stream_mode: StreamMode = StreamMode.SYNC,
        device_id: int | None = None,
        owner: object = None,
        deleter: Callable[[], None] | None = None,
    ) -> "HAMRDataArray":
        """Zero-copy construct around externally allocated memory.

        This is the paper's Listing 1: the simulation shares its device
        pointer with SENSEI, together with the additional information a
        heterogeneous transfer needs — the allocator (PM), the device
        the memory resides on, and the stream/mode governing ordering.
        ``owner`` keeps a shared owner alive (smart-pointer hand-off);
        ``deleter`` supports raw-pointer hand-offs where the caller
        manages the life cycle.
        """
        arr = cls(name, n_components)
        data = np.asarray(data)
        if cls.fixed_dtype is not None and data.dtype != cls.fixed_dtype:
            raise ShapeMismatchError(
                f"{cls.__name__} requires dtype {cls.fixed_dtype}, got {data.dtype}"
            )
        if data.size % arr.n_components:
            raise ShapeMismatchError(
                f"{data.size} values not divisible by {arr.n_components} components"
            )
        arr._buffer = Buffer.wrap(
            data,
            allocator=allocator,
            device_id=device_id,
            stream=stream,
            stream_mode=stream_mode,
            owner=owner,
            deleter=deleter,
            name=name,
        )
        return arr

    def initialize(
        self,
        n_tuples: int,
        allocator: Allocator = Allocator.MALLOC,
        stream: Stream | None = None,
        stream_mode: StreamMode = StreamMode.SYNC,
        device_id: int | None = None,
        dtype=None,
    ) -> None:
        """Give a default-constructed instance storage."""
        if self._buffer is not None:
            raise UninitializedArrayError(
                f"array {self.name!r} is already initialized"
            )
        if dtype is None:
            dtype = self.fixed_dtype if self.fixed_dtype is not None else np.float64
        elif self.fixed_dtype is not None and np.dtype(dtype) != self.fixed_dtype:
            raise ShapeMismatchError(
                f"{type(self).__name__} requires dtype {self.fixed_dtype}, got {dtype}"
            )
        self._buffer = Buffer.allocate(
            int(n_tuples) * self.n_components,
            dtype=dtype,
            allocator=allocator,
            device_id=device_id,
            stream=stream,
            stream_mode=stream_mode,
            name=self.name,
        )

    # -- introspection ------------------------------------------------------------
    @property
    def initialized(self) -> bool:
        return self._buffer is not None

    def _require_buffer(self) -> Buffer:
        if self._buffer is None:
            raise UninitializedArrayError(
                f"array {self.name!r} used before initialization"
            )
        return self._buffer

    @property
    def buffer(self) -> Buffer:
        """The managed allocation behind this array."""
        return self._require_buffer()

    @property
    def n_tuples(self) -> int:
        return self._require_buffer().size // self.n_components

    @property
    def dtype(self) -> np.dtype:
        return self._require_buffer().dtype

    @property
    def allocator(self) -> Allocator:
        return self._require_buffer().allocator

    @property
    def device_id(self) -> int:
        """Device the data resides on (-1 = host)."""
        buf = self._require_buffer()
        return HOST_DEVICE_ID if buf.on_host else buf.device_id

    @property
    def on_host(self) -> bool:
        return self._require_buffer().on_host

    # -- PM/location agnostic access ---------------------------------------------
    def get_accessible(
        self,
        pm: PMKind,
        device_id: int | None = None,
        stream: Stream | None = None,
        mode: StreamMode | None = None,
    ) -> SharedView:
        """Read access in ``pm`` at a location of the caller's choosing.

        If the data is already accessible on the requested device in the
        requested PM, no additional work is done and direct access is
        granted.  Otherwise a temporary is allocated, the data is moved,
        and the returned shared view cleans the temporary up when it
        goes out of scope.
        """
        buf = self._require_buffer()
        if device_id is None:
            device_id = HOST_DEVICE_ID if pm is PMKind.HOST else get_active_device()
        return accessible_view(buf, pm, device_id, stream=stream, mode=mode)

    def get_host_accessible(self, stream: Stream | None = None,
                            mode: StreamMode | None = None) -> SharedView:
        """A view readable on the host (Listing 4's ``GetHostAccessible``)."""
        return self.get_accessible(PMKind.HOST, HOST_DEVICE_ID, stream, mode)

    def get_cuda_accessible(self, device_id: int | None = None,
                            stream: Stream | None = None,
                            mode: StreamMode | None = None) -> SharedView:
        """A view readable from CUDA on the active (or given) device."""
        return self.get_accessible(PMKind.CUDA, device_id, stream, mode)

    def get_hip_accessible(self, device_id: int | None = None,
                           stream: Stream | None = None,
                           mode: StreamMode | None = None) -> SharedView:
        """A view readable from HIP on the active (or given) device."""
        return self.get_accessible(PMKind.HIP, device_id, stream, mode)

    def get_openmp_accessible(self, device_id: int | None = None,
                              stream: Stream | None = None,
                              mode: StreamMode | None = None) -> SharedView:
        """A view readable from OpenMP offload on the active (or given) device."""
        return self.get_accessible(PMKind.OPENMP, device_id, stream, mode)

    def get_sycl_accessible(self, device_id: int | None = None,
                            stream: Stream | None = None,
                            mode: StreamMode | None = None) -> SharedView:
        """A view readable from SYCL on the active (or given) device.

        SYCL support is the paper's Section 5 future work, implemented
        here as an extension.
        """
        return self.get_accessible(PMKind.SYCL, device_id, stream, mode)

    def get_kokkos_accessible(self, device_id: int | None = None,
                              stream: Stream | None = None,
                              mode: StreamMode | None = None) -> SharedView:
        """A view readable from Kokkos on the active (or given) device.

        Kokkos support is the paper's Section 5 future work, implemented
        here as an extension.
        """
        return self.get_accessible(PMKind.KOKKOS, device_id, stream, mode)

    # -- direct access ---------------------------------------------------------------
    def get_data(self) -> np.ndarray:
        """Direct access to the raw storage (Listing 3, line 24).

        Legal only when the caller knows the location and PM — e.g. for
        an array it just allocated in place.
        """
        # This *is* the sanctioned direct-access API (paper's GetData).
        return self._require_buffer().data  # lint: disable=HL001

    # -- operations ----------------------------------------------------------------
    def fill(self, value: float) -> None:
        """Set every component to ``value``."""
        self._require_buffer().fill(value)

    def synchronize(self, clock: SimClock | None = None) -> float:
        """Wait for in-flight operations (moves, fills, kernels) to land."""
        return self._require_buffer().synchronize(clock)

    def delete(self) -> None:
        """Release the container (the paper's ``simData->Delete()``).

        For zero-copy arrays with a shared owner this drops the HDA's
        reference; the external memory lives on until its owner releases
        it.  For allocating arrays the storage is freed.
        """
        if self._buffer is not None:
            self._buffer.free()
            self._buffer = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._buffer is None:
            return f"{type(self).__name__}({self.name!r}, uninitialized)"
        loc = "host" if self.on_host else f"dev{self.device_id}"
        return (
            f"{type(self).__name__}({self.name!r}, n_tuples={self.n_tuples}, "
            f"n_components={self.n_components}, alloc={self.allocator.name}, "
            f"loc={loc})"
        )


class HAMRDoubleArray(HAMRDataArray):
    """``svtkHAMRDoubleArray`` — float64 components."""

    fixed_dtype = np.dtype(np.float64)


class HAMRFloatArray(HAMRDataArray):
    """``svtkHAMRFloatArray`` — float32 components."""

    fixed_dtype = np.dtype(np.float32)


class HAMRInt64Array(HAMRDataArray):
    """``svtkHAMRLongLongArray`` — int64 components."""

    fixed_dtype = np.dtype(np.int64)
