"""The SENSEI data model (``svtk``), with the paper's HAMR extensions.

SENSEI's data model is based on VTK: an abstract ``svtkDataArray``
defines array management/access interfaces, and datasets (tables,
meshes, multi-block collections) are built on top of it.  Stock VTK
arrays are host-only; the paper's contribution is the
``svtkHAMRDataArray`` subclass — reproduced here as
:class:`~repro.svtk.hamr_array.HAMRDataArray` — which adds host *and*
device memory management plus programming-model interoperability.

Datasets:

- :class:`~repro.svtk.table.TableData` — a column store of data arrays;
  the natural container for particle/tabular data and the input shape
  the data-binning analysis consumes;
- :class:`~repro.svtk.mesh.UniformCartesianMesh` — a uniform Cartesian
  mesh with cell-centered arrays; the output shape of data binning;
- :class:`~repro.svtk.multiblock.MultiBlockData` — the per-rank block
  collection SENSEI passes across the in situ interface.

Writers in :mod:`repro.svtk.writer` consume any of the above through
host-accessible views only — they are the ``libB`` of the paper's
Listing 4.
"""

from repro.svtk.data_array import DataArray, HostDataArray
from repro.svtk.hamr_array import (
    HAMRDataArray,
    HAMRDoubleArray,
    HAMRFloatArray,
    HAMRInt64Array,
)
from repro.svtk.table import TableData
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.multiblock import MultiBlockData
from repro.svtk.writer import (
    write_csv_table,
    write_vtk_image,
    write_vtk_particles,
)
from repro.svtk.reader import (
    read_csv_table,
    read_vtk_image,
    read_vtk_particles,
)
from repro.svtk.metadata import ArrayMetadata, MeshMetadata, metadata_for

__all__ = [
    "DataArray",
    "HostDataArray",
    "HAMRDataArray",
    "HAMRDoubleArray",
    "HAMRFloatArray",
    "HAMRInt64Array",
    "TableData",
    "UniformCartesianMesh",
    "MultiBlockData",
    "write_csv_table",
    "write_vtk_image",
    "write_vtk_particles",
    "read_csv_table",
    "read_vtk_image",
    "read_vtk_particles",
    "ArrayMetadata",
    "MeshMetadata",
    "metadata_for",
]
