"""Mesh metadata — SENSEI's look-before-you-touch interface.

SENSEI back-ends first query *metadata* about the meshes a simulation
publishes (names, shapes, arrays, residency) and only then ask for the
data they actually need.  On heterogeneous nodes this matters more: the
metadata records *where* each array lives, so a back-end can plan
placement and movement before triggering any transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator
from repro.svtk.data_array import DataArray
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.multiblock import MultiBlockData
from repro.svtk.table import TableData

__all__ = ["ArrayMetadata", "MeshMetadata", "metadata_for"]


@dataclass(frozen=True)
class ArrayMetadata:
    """Shape and residency of one published array."""

    name: str
    n_tuples: int
    n_components: int
    dtype: str
    centering: str                 # "column" | "cell" | "point"
    device_id: int = HOST_DEVICE_ID
    allocator: str = Allocator.MALLOC.value

    @property
    def on_host(self) -> bool:
        return self.device_id == HOST_DEVICE_ID


@dataclass(frozen=True)
class MeshMetadata:
    """Structure of one published mesh, without touching its data."""

    name: str
    mesh_type: str                 # "table" | "uniform_mesh" | "multiblock"
    n_elements: int                # local rows (table) or cells (mesh)
    arrays: tuple[ArrayMetadata, ...] = ()
    dims: tuple[int, ...] | None = None
    bounds: tuple[tuple[float, float], ...] | None = None
    n_blocks: int | None = None
    local_blocks: tuple[int, ...] = ()

    def array(self, name: str) -> ArrayMetadata:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(
            f"mesh {self.name!r} has no array {name!r}; "
            f"available: {[a.name for a in self.arrays]}"
        )

    def has_array(self, name: str) -> bool:
        return any(a.name == name for a in self.arrays)

    @property
    def array_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.arrays)


def _array_metadata(arr: DataArray, centering: str) -> ArrayMetadata:
    if isinstance(arr, HAMRDataArray):
        device_id = arr.device_id
        allocator = arr.allocator.value
    else:
        device_id = HOST_DEVICE_ID
        allocator = Allocator.MALLOC.value
    return ArrayMetadata(
        name=arr.name,
        n_tuples=arr.n_tuples,
        n_components=arr.n_components,
        dtype=np.dtype(arr.dtype).name,
        centering=centering,
        device_id=device_id,
        allocator=allocator,
    )


def metadata_for(dataset: object, name: str | None = None) -> MeshMetadata:
    """Derive metadata for a table, uniform mesh, or multi-block set."""
    if isinstance(dataset, TableData):
        return MeshMetadata(
            name=name or dataset.name,
            mesh_type="table",
            n_elements=dataset.n_rows,
            arrays=tuple(
                _array_metadata(dataset.column(c), "column")
                for c in dataset.column_names
            ),
        )
    if isinstance(dataset, UniformCartesianMesh):
        return MeshMetadata(
            name=name or dataset.name,
            mesh_type="uniform_mesh",
            n_elements=dataset.n_cells,
            arrays=tuple(
                _array_metadata(dataset.cell_array(c), "cell")
                for c in dataset.cell_array_names
            ),
            dims=dataset.dims,
            bounds=dataset.bounds,
        )
    if isinstance(dataset, MultiBlockData):
        total = 0
        for _bid, block in dataset.local_blocks():
            inner = metadata_for(block)
            total += inner.n_elements
        return MeshMetadata(
            name=name or dataset.name,
            mesh_type="multiblock",
            n_elements=total,
            n_blocks=dataset.n_blocks,
            local_blocks=dataset.local_block_ids,
        )
    raise TypeError(f"no metadata rule for {type(dataset).__name__}")
