"""Multi-block datasets — the per-rank collections SENSEI exchanges.

In SENSEI each MPI rank contributes its local block(s) of a
distributed dataset; the data adaptor presents them as a multi-block
collection indexed by global block id.  Blocks may be tables or meshes
(anything the data model defines).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ShapeMismatchError

__all__ = ["MultiBlockData"]


class MultiBlockData:
    """A sparse, block-id-indexed collection of datasets.

    On a given rank only the locally owned blocks are populated; the
    global structure (``n_blocks``) is shared so that back-ends can
    reason about the whole dataset.
    """

    def __init__(self, n_blocks: int, name: str = "multiblock"):
        if n_blocks < 0:
            raise ShapeMismatchError(f"n_blocks must be >= 0: {n_blocks}")
        self.name = str(name)
        self.n_blocks = int(n_blocks)
        self._blocks: dict[int, object] = {}

    def set_block(self, block_id: int, dataset: object) -> None:
        if not 0 <= block_id < self.n_blocks:
            raise ShapeMismatchError(
                f"block id {block_id} out of range [0, {self.n_blocks})"
            )
        self._blocks[block_id] = dataset

    def block(self, block_id: int) -> object:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise KeyError(
                f"block {block_id} is not local; local blocks: {sorted(self._blocks)}"
            ) from None

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    @property
    def local_block_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._blocks))

    @property
    def n_local_blocks(self) -> int:
        return len(self._blocks)

    def local_blocks(self) -> Iterator[tuple[int, object]]:
        for bid in self.local_block_ids:
            yield bid, self._blocks[bid]

    def __iter__(self) -> Iterator[int]:
        return iter(self.local_block_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiBlockData({self.name!r}, n_blocks={self.n_blocks}, "
            f"local={self.local_block_ids})"
        )
