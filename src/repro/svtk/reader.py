"""Readers for the legacy-ASCII VTK files the writers produce.

Post hoc tooling needs to load what the in situ pipeline wrote; these
readers parse the two legacy VTK dialects
:mod:`repro.svtk.writer` emits (``STRUCTURED_POINTS`` with cell data,
and ``POLYDATA`` point clouds) back into data-model objects, and CSV
tables back into :class:`~repro.svtk.table.TableData`.  They are strict
about the subset they support and raise clear errors otherwise.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.table import TableData

__all__ = ["read_vtk_image", "read_vtk_particles", "read_csv_table", "VtkParseError"]


class VtkParseError(ReproError):
    """The file is not in the supported legacy-VTK subset."""


class _Lines:
    """A peekable, blank-skipping line cursor."""

    def __init__(self, text: str):
        self._lines = [ln.strip() for ln in text.splitlines()]
        self._pos = 0

    def next(self) -> str:
        while self._pos < len(self._lines):
            ln = self._lines[self._pos]
            self._pos += 1
            if ln:
                return ln
        raise VtkParseError("unexpected end of file")

    def peek(self) -> str | None:
        pos = self._pos
        try:
            ln = self.next()
        except VtkParseError:
            return None
        self._pos = pos
        return ln

    def read_values(self, count: int) -> np.ndarray:
        out: list[float] = []
        while len(out) < count:
            out.extend(float(v) for v in self.next().split())
        if len(out) != count:
            raise VtkParseError(
                f"expected {count} values, got {len(out)} (ragged data block)"
            )
        return np.array(out)


def _check_header(cur: _Lines) -> str:
    magic = cur.next()
    if not magic.startswith("# vtk DataFile"):
        raise VtkParseError(f"not a legacy VTK file: {magic!r}")
    title = cur.next()
    fmt = cur.next()
    if fmt != "ASCII":
        raise VtkParseError(f"only ASCII files are supported, got {fmt!r}")
    return title


def _read_scalars(cur: _Lines, n: int) -> tuple[str, np.ndarray]:
    header = cur.next().split()
    if header[0] != "SCALARS" or len(header) < 3:
        raise VtkParseError(f"expected SCALARS header, got {' '.join(header)!r}")
    name = header[1]
    n_comp = int(header[3]) if len(header) > 3 else 1
    lut = cur.next()
    if not lut.startswith("LOOKUP_TABLE"):
        raise VtkParseError(f"expected LOOKUP_TABLE, got {lut!r}")
    return name, cur.read_values(n * n_comp)


def read_vtk_image(path: str | os.PathLike) -> UniformCartesianMesh:
    """Read a STRUCTURED_POINTS file written by :func:`write_vtk_image`.

    Trailing singleton axes (written for 1-D/2-D meshes) are dropped so
    a round trip preserves the original mesh rank.
    """
    cur = _Lines(Path(path).read_text(encoding="ascii"))
    title = _check_header(cur)
    if cur.next() != "DATASET STRUCTURED_POINTS":
        raise VtkParseError("not a STRUCTURED_POINTS dataset")
    dims = origin = spacing = None
    for _ in range(3):
        key, *vals = cur.next().split()
        if key == "DIMENSIONS":
            dims = [int(v) - 1 for v in vals]  # points -> cells
        elif key == "ORIGIN":
            origin = [float(v) for v in vals]
        elif key == "SPACING":
            spacing = [float(v) for v in vals]
        else:
            raise VtkParseError(f"unexpected geometry key {key!r}")
    if dims is None or origin is None or spacing is None:
        raise VtkParseError("missing DIMENSIONS/ORIGIN/SPACING")
    # Single-point padding planes (0 cells) mark axes the original mesh
    # did not have; drop them to restore its rank.
    while len(dims) > 1 and dims[-1] == 0:
        dims, origin, spacing = dims[:-1], origin[:-1], spacing[:-1]
    if any(d < 1 for d in dims):
        raise VtkParseError(f"degenerate interior axis in DIMENSIONS: {dims}")
    mesh = UniformCartesianMesh(dims, origin=origin, spacing=spacing, name=title)

    section = cur.next().split()
    if section[0] == "POINT_DATA":
        if int(section[1]) != mesh.n_points:
            raise VtkParseError(
                f"expected POINT_DATA {mesh.n_points}, got {section[1]}"
            )
        while cur.peek() is not None and not cur.peek().startswith("CELL_DATA"):
            name, values = _read_scalars(cur, mesh.n_points)
            mesh.add_host_point_array(name, values)
        section = cur.next().split()
    if section[0] != "CELL_DATA" or int(section[1]) != mesh.n_cells:
        raise VtkParseError(
            f"expected CELL_DATA {mesh.n_cells}, got {' '.join(section)}"
        )
    while cur.peek() is not None:
        name, values = _read_scalars(cur, mesh.n_cells)
        mesh.add_host_cell_array(name, values)
    return mesh


def read_vtk_particles(path: str | os.PathLike) -> TableData:
    """Read a POLYDATA point cloud written by :func:`write_vtk_particles`.

    Returns a table with columns ``x``, ``y``, ``z`` plus one column
    per POINT_DATA scalar.
    """
    cur = _Lines(Path(path).read_text(encoding="ascii"))
    _check_header(cur)
    if cur.next() != "DATASET POLYDATA":
        raise VtkParseError("not a POLYDATA dataset")
    key, n_str, _dtype = cur.next().split()
    if key != "POINTS":
        raise VtkParseError(f"expected POINTS, got {key!r}")
    n = int(n_str)
    xyz = cur.read_values(3 * n).reshape(n, 3)
    table = TableData("particles")
    for i, name in enumerate(("x", "y", "z")):
        table.add_host_column(name, xyz[:, i])

    ln = cur.peek()
    if ln is not None and ln.startswith("POINT_DATA"):
        _, count = cur.next().split()
        if int(count) != n:
            raise VtkParseError(f"POINT_DATA count {count} != POINTS {n}")
        while cur.peek() is not None:
            name, values = _read_scalars(cur, n)
            table.add_host_column(name, values)
    return table


def read_csv_table(path: str | os.PathLike) -> TableData:
    """Read a CSV written by :func:`repro.svtk.writer.write_csv_table`."""
    lines = Path(path).read_text(encoding="ascii").strip().splitlines()
    if not lines or not lines[0]:
        return TableData()
    names = lines[0].split(",")
    rows = [
        [float(v) for v in ln.split(",")] for ln in lines[1:] if ln
    ]
    for i, row in enumerate(rows):
        if len(row) != len(names):
            raise VtkParseError(
                f"row {i + 1} has {len(row)} fields, header has {len(names)}"
            )
    data = np.array(rows) if rows else np.empty((0, len(names)))
    table = TableData()
    for i, name in enumerate(names):
        table.add_host_column(name, data[:, i])
    return table
