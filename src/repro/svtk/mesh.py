"""Uniform Cartesian meshes (VTK image-data equivalent).

Data binning "specifies a subset of the variables to use as the
coordinate axes of a uniform Cartesian mesh and transforms the data
into the new coordinate system" (paper Section 4.2).  The binning
output is an instance of this mesh: a regular grid with cell-centered
result arrays (count / sum / min / max / average per bin).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ShapeMismatchError
from repro.svtk.data_array import DataArray, HostDataArray

__all__ = ["UniformCartesianMesh"]


class UniformCartesianMesh:
    """A uniform Cartesian mesh with cell-centered data arrays.

    Parameters
    ----------
    dims:
        Number of *cells* along each axis (e.g. ``(256, 256)`` for the
        paper's Figure 1 binning grids).
    origin:
        Coordinate of the low corner along each axis.
    spacing:
        Cell width along each axis.
    """

    def __init__(
        self,
        dims: Sequence[int],
        origin: Sequence[float] | None = None,
        spacing: Sequence[float] | None = None,
        name: str = "mesh",
    ):
        self.name = str(name)
        self.dims = tuple(int(d) for d in dims)
        if not self.dims or any(d < 1 for d in self.dims):
            raise ShapeMismatchError(f"invalid mesh dims: {dims}")
        ndim = len(self.dims)
        self.origin = (
            tuple(float(x) for x in origin) if origin is not None else (0.0,) * ndim
        )
        self.spacing = (
            tuple(float(x) for x in spacing) if spacing is not None else (1.0,) * ndim
        )
        if len(self.origin) != ndim or len(self.spacing) != ndim:
            raise ShapeMismatchError(
                f"origin/spacing rank must match dims rank {ndim}"
            )
        if any(s <= 0 for s in self.spacing):
            raise ShapeMismatchError(f"spacing must be positive: {self.spacing}")
        self._cell_data: dict[str, DataArray] = {}
        self._point_data: dict[str, DataArray] = {}

    # -- geometry ----------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims))

    @property
    def bounds(self) -> tuple[tuple[float, float], ...]:
        """Per-axis ``(low, high)`` coordinate bounds."""
        return tuple(
            (o, o + s * d) for o, s, d in zip(self.origin, self.spacing, self.dims)
        )

    def cell_centers(self, axis: int) -> np.ndarray:
        """Cell-center coordinates along ``axis``."""
        o, s, d = self.origin[axis], self.spacing[axis], self.dims[axis]
        return o + s * (np.arange(d) + 0.5)

    def cell_edges(self, axis: int) -> np.ndarray:
        """Cell-edge coordinates along ``axis`` (``dims[axis]+1`` values)."""
        o, s, d = self.origin[axis], self.spacing[axis], self.dims[axis]
        return o + s * np.arange(d + 1)

    # -- cell data -----------------------------------------------------------------
    def add_cell_array(self, array: DataArray) -> None:
        """Attach a cell-centered array (one tuple per cell)."""
        if array.n_tuples != self.n_cells:
            raise ShapeMismatchError(
                f"cell array {array.name!r} has {array.n_tuples} tuples, "
                f"mesh has {self.n_cells} cells"
            )
        self._cell_data[array.name] = array

    def add_host_cell_array(self, name: str, values: np.ndarray) -> HostDataArray:
        """Convenience: attach host values as a cell array."""
        values = np.asarray(values)
        arr = HostDataArray(name, values.reshape(-1))
        self.add_cell_array(arr)
        return arr

    def cell_array(self, name: str) -> DataArray:
        try:
            return self._cell_data[name]
        except KeyError:
            raise KeyError(
                f"mesh {self.name!r} has no cell array {name!r}; "
                f"available: {sorted(self._cell_data)}"
            ) from None

    def cell_array_as_grid(self, name: str) -> np.ndarray:
        """A cell array reshaped to the mesh dims (host copy/view)."""
        arr = self.cell_array(name).as_numpy_host()
        return np.asarray(arr).reshape(self.dims)

    @property
    def cell_array_names(self) -> tuple[str, ...]:
        return tuple(self._cell_data)

    # -- point data ----------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of mesh points (cells + 1 along each axis)."""
        out = 1
        for d in self.dims:
            out *= d + 1
        return out

    def add_point_array(self, array: DataArray) -> None:
        """Attach a node-centered array (one tuple per mesh point)."""
        if array.n_tuples != self.n_points:
            raise ShapeMismatchError(
                f"point array {array.name!r} has {array.n_tuples} tuples, "
                f"mesh has {self.n_points} points"
            )
        self._point_data[array.name] = array

    def add_host_point_array(self, name: str, values: np.ndarray) -> HostDataArray:
        """Convenience: attach host values as a point array."""
        arr = HostDataArray(name, np.asarray(values).reshape(-1))
        self.add_point_array(arr)
        return arr

    def point_array(self, name: str) -> DataArray:
        try:
            return self._point_data[name]
        except KeyError:
            raise KeyError(
                f"mesh {self.name!r} has no point array {name!r}; "
                f"available: {sorted(self._point_data)}"
            ) from None

    @property
    def point_array_names(self) -> tuple[str, ...]:
        return tuple(self._point_data)

    def __contains__(self, name: str) -> bool:
        return name in self._cell_data

    def __iter__(self) -> Iterator[str]:
        return iter(self._cell_data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformCartesianMesh({self.name!r}, dims={self.dims}, "
            f"arrays={list(self._cell_data)})"
        )
