"""A bursty multi-tenant request-stream workload.

The zoo's service-shaped entry: several *tenants* (one service
pipeline each) publish request batches whose sizes follow independent
seeded Markov on/off chains — calm steps ship ``base_rows``, burst
steps ship ``burst_rows``, with per-tenant transition probabilities.
Tenants may join late (``join_step``) and leave early (``fin_step``),
exercising elastic membership, and the wildly skewed per-tenant byte
rates are exactly what per-tenant admission control
(``<control quota="on">``) exists to arbitrate.

The schedule is *replicated*: every producer rank derives the
identical per-tenant row sequence from ``random.Random(f"{seed}:{name}")``,
so membership events and payload sizes are bit-identical across ranks
and runs — the property the trace recorder's golden gate pins down.

Runs standalone (:func:`RequestStreamConfig.run`) or as a service
producer (:func:`request_stream_producer`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.hamr.runtime import current_clock
from repro.svtk.table import TableData

__all__ = ["TenantSpec", "RequestStreamConfig", "request_stream_producer"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape and service lifetime."""

    name: str
    weight: float = 1.0            # admission-control share
    base_rows: int = 256           # calm-state batch size
    burst_rows: int = 4096         # burst-state batch size
    p_burst: float = 0.25          # calm -> burst transition probability
    p_calm: float = 0.5            # burst -> calm transition probability
    join_step: int = 0             # first step this tenant publishes
    fin_step: int | None = None    # first step it no longer publishes

    def __post_init__(self):
        if not self.name:
            raise ConfigError("tenants need a non-empty name")
        if self.base_rows < 1 or self.burst_rows < 1:
            raise ConfigError(
                f"tenant {self.name!r} batch sizes must be >= 1"
            )
        if not (0.0 <= self.p_burst <= 1.0 and 0.0 <= self.p_calm <= 1.0):
            raise ConfigError(
                f"tenant {self.name!r} probabilities must be in [0, 1]"
            )
        if self.join_step < 0:
            raise ConfigError(f"tenant {self.name!r} join_step must be >= 0")
        if self.fin_step is not None and self.fin_step <= self.join_step:
            raise ConfigError(
                f"tenant {self.name!r} must fin after joining "
                f"({self.fin_step} <= {self.join_step})"
            )

    def active(self, step: int) -> bool:
        if step < self.join_step:
            return False
        return self.fin_step is None or step < self.fin_step


def _default_tenants() -> tuple:
    return (
        TenantSpec("alpha", weight=2.0, base_rows=256, burst_rows=1024,
                   p_burst=0.15, p_calm=0.6),
        TenantSpec("beta", base_rows=128, burst_rows=4096,
                   p_burst=0.35, p_calm=0.4),
        TenantSpec("gamma", base_rows=512, burst_rows=2048,
                   p_burst=0.25, p_calm=0.5, join_step=2, fin_step=6),
    )


@dataclass(frozen=True)
class RequestStreamConfig:
    """The full request-stream scenario (identical on every rank)."""

    tenants: tuple = field(default_factory=_default_tenants)
    steps: int = 8
    dt: float = 1.0                # simulation seconds per step
    seed: int = 11
    compute_time: float = 0.05     # charged producer seconds per step
    # Service admission-control knobs (forwarded to ServiceConfig).
    budget: int = 16
    min_credits: int = 1
    skew: float = 1.3
    cooldown: int = 1
    interval: int = 2

    def __post_init__(self):
        if self.steps < 1:
            raise ConfigError(f"steps must be >= 1: {self.steps}")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {names}")

    def schedule(self) -> dict:
        """Per-tenant rows per step (None while inactive).

        Pure function of the config: each tenant's Markov chain runs
        on ``random.Random(f"{seed}:{name}")``, drawing one transition
        per active step.
        """
        out = {}
        for tenant in self.tenants:
            rng = random.Random(f"{self.seed}:{tenant.name}")
            state = "calm"
            rows: list = []
            for step in range(self.steps):
                if not tenant.active(step):
                    rows.append(None)
                    continue
                rows.append(
                    tenant.burst_rows if state == "burst"
                    else tenant.base_rows
                )
                flip = rng.random()
                if state == "calm" and flip < tenant.p_burst:
                    state = "burst"
                elif state == "burst" and flip < tenant.p_calm:
                    state = "calm"
            out[tenant.name] = rows
        return out

    def service_config(self, transport=None):
        """The matching :class:`~repro.service.plan.ServiceConfig`.

        One non-collective pipeline per tenant (mesh name = tenant
        name) carrying ``transport`` (default wire settings when
        None), plus this config's admission-control knobs.
        """
        from repro.service.plan import PipelineSpec, ServiceConfig
        from repro.transport.config import TransportConfig

        wire = transport if transport is not None else TransportConfig()
        return ServiceConfig(
            budget=self.budget,
            min_credits=self.min_credits,
            skew=self.skew,
            cooldown=self.cooldown,
            interval=self.interval,
            pipelines=tuple(
                PipelineSpec(
                    name=t.name, mesh=t.name, weight=t.weight,
                    shard_size=1, transport=wire,
                )
                for t in self.tenants
            ),
        )

    def run(self, m: int = 2, n: int = 2, transport=None, cost=None,
            control=None, registry=None):
        """Standalone launch: returns ``(producer_results, endpoints)``."""
        from repro.service.runtime import run_service

        return run_service(
            self.service_config(transport),
            request_stream_producer(self),
            registry,
            m=m, n=n, cost=cost, control=control,
        )


def request_stream_producer(config: RequestStreamConfig):
    """A ``producer_main`` publishing the seeded tenant schedule.

    Each step charges ``compute_time``, publishes one batch per active
    tenant (request ids plus a replicated per-batch load value), and
    fins each tenant's pipeline right after its last publish step.
    """

    def producer_main(sim_comm, bridge):
        from repro.sensei.data_adaptor import TableDataAdaptor

        schedule = config.schedule()
        loads = {
            t.name: random.Random(f"{config.seed}:{t.name}:load")
            for t in config.tenants
        }
        clk = current_clock()
        published = {t.name: 0 for t in config.tenants}
        for step in range(config.steps):
            clk.advance(config.compute_time)
            adaptor = TableDataAdaptor(comm=sim_comm)
            any_rows = False
            for tenant in config.tenants:
                rows = schedule[tenant.name][step]
                if rows is None:
                    continue
                table = TableData(tenant.name)
                table.add_host_column(
                    "req",
                    np.arange(rows, dtype=np.int64) + step * rows,
                )
                table.add_host_column(
                    "load",
                    np.full(rows, loads[tenant.name].random()),
                )
                adaptor.set_table(tenant.name, table)
                published[tenant.name] += 1
                any_rows = True
            if any_rows:
                adaptor.set_step(step, step * config.dt)
                bridge.execute(adaptor)
            for tenant in config.tenants:
                if tenant.fin_step == step + 1:
                    bridge.finish_pipeline(tenant.name)
        return published

    return producer_main
