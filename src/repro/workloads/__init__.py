"""The workload zoo: structurally diverse seeded producers.

Every workload here is deterministic by construction (seeded
``random.Random`` state machines, replicated numpy float64 numerics,
simulated clocks) and runs three ways: standalone, as a service
producer through :func:`repro.service.run_service`, and — where the
workload owns a distributed array — under the array plane's adaptive
repartitioner.  The zoo (:mod:`repro.workloads.zoo`) names canonical
configurations of each for trace recording and the golden-trace CI
gate.

- :mod:`repro.workloads.particle` — irregular/adaptive particle
  dynamics with a migrating hotspot (load skew that *moves*);
- :mod:`repro.workloads.request_stream` — a bursty multi-tenant
  request stream (Markov on/off traffic, elastic membership);
- the regular stencil (:mod:`repro.array.stencil`) and Newton++
  (:mod:`repro.newton`) round out the zoo's four shapes.
"""

from repro.workloads.particle import (
    ParticleConfig,
    ParticleWorkload,
    particle_producer,
)
from repro.workloads.request_stream import (
    RequestStreamConfig,
    TenantSpec,
    request_stream_producer,
)
from repro.workloads.zoo import GOLDEN_SCENARIOS, ZOO_WORKLOADS, record_zoo

__all__ = [
    "ParticleConfig",
    "ParticleWorkload",
    "particle_producer",
    "TenantSpec",
    "RequestStreamConfig",
    "request_stream_producer",
    "ZOO_WORKLOADS",
    "GOLDEN_SCENARIOS",
    "record_zoo",
]
