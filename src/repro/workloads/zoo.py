"""The zoo registry: named, seeded, trace-recordable scenarios.

Each entry pairs one workload with a canonical service configuration
and returns everything :func:`repro.trace.record_service_run` needs.
Four structurally different workloads cover the zoo proper —

- ``newton``     — compute-bound replicated N-body (regular traffic),
- ``stencil``    — static-hotspot stencil under adaptive repartition,
- ``particle``   — migrating-hotspot particles (irregular, adaptive),
- ``request-stream`` — bursty multi-tenant streams under admission
  control (elastic membership) —

and three small single-governor scenarios back the golden-trace
fixtures (``codec``, ``flow``, ``repartition``).

Every scenario uses a *patient* retry policy (5 s wall ACK timeout):
the simulated clocks are deterministic exactly as long as the
wall-clock stall guard never fires, so zoo traces are byte-stable on
any machine that can deliver a thread message in under five seconds.
The ``codec`` scenario ships zero-filled payloads so its golden bytes
do not depend on the local zlib build's encoding choices.
"""

from __future__ import annotations

import numpy as np

from repro.control.plan import ControlConfig
from repro.service.plan import PipelineSpec, ServiceConfig
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.units import gbs, us

__all__ = ["ZOO_WORKLOADS", "GOLDEN_SCENARIOS", "zoo_entry", "record_zoo"]

#: The four structurally different workloads the zoo guarantees.
ZOO_WORKLOADS = ("newton", "stencil", "particle", "request-stream")

#: The scenarios whose traces are pinned under ``tests/golden/``.
GOLDEN_SCENARIOS = ("codec", "flow", "repartition")

#: Generous wall stall-guard: retransmits must be scheduled by the
#: delivery verdicts (seeded), never by the wall clock.
_PATIENT = RetryPolicy(max_retries=40, ack_timeout=5.0)


def _single(name, transport, m, n):
    """A one-tenant collective service over ``n`` endpoints."""
    return ServiceConfig(pipelines=(
        PipelineSpec(
            name=name, mesh=name, shard_size=n, collective=True,
            transport=transport,
        ),
    ))


def _newton(seed: int, quick: bool) -> dict:
    from repro.newton.adaptor import NewtonDataAdaptor
    from repro.newton.solver import NewtonSolver, SolverConfig

    steps = 3 if quick else 6
    # device_id=None: each rank drives its own device.  Pinning both
    # ranks to one device would share its stream/pool, and the enqueue
    # order (hence simulated kernel starts) would follow the thread
    # scheduler — breaking byte-stable re-recording.
    solver_cfg = SolverConfig(
        n_bodies=96, dt=1e-3, softening=0.05, seed=seed,
        mass_range=(0.01, 0.03), device_id=None,
    )

    def producer_main(sim_comm, bridge):
        solver = NewtonSolver(solver_cfg, sim_comm)
        adaptor = NewtonDataAdaptor(solver)
        solver.run(steps, bridge=bridge, adaptor=adaptor)
        return solver.step_count

    transport = TransportConfig(
        compression="none", chunk_bytes=2048, retry=_PATIENT,
    ).with_faults(drop=0.05, duplicate=0.02, seed=seed + 100)
    return {
        "config": _single("bodies", transport, 2, 1),
        "producer_main": producer_main,
        "m": 2,
        "n": 1,
        "control": ControlConfig.from_xml_attrs(
            {"seed": str(seed), "flow": "on"}
        ),
        "meta": {"workload": "newton", "seed": seed, "steps": steps},
    }


def _stencil(seed: int, quick: bool) -> dict:
    from repro.array.stencil import StencilConfig, stencil_producer

    steps = 8 if quick else 16
    stencil_cfg = StencilConfig(
        length=256, steps=steps, block_rows=16, compute_rate=2.0e6,
        hotspot=(0.0, 0.25), hotspot_cost=6.0, hotspot_from=1,
    )
    transport = TransportConfig(
        chunk_bytes=1024, retry=_PATIENT,
    ).with_faults(drop=0.08, reorder=0.05, seed=seed + 200)
    return {
        "config": _single("stencil", transport, 2, 1),
        "producer_main": stencil_producer(
            stencil_cfg, adaptive=True, interval=4, mesh="stencil",
        ),
        "m": 2,
        "n": 1,
        "control": ControlConfig.from_xml_attrs(
            {"seed": str(seed), "repartition": "on", "interval": "4"}
        ),
        "meta": {"workload": "stencil", "seed": seed, "steps": steps},
    }


def _particle(seed: int, quick: bool) -> dict:
    from repro.workloads.particle import ParticleConfig, particle_producer

    steps = 8 if quick else 16
    particle_cfg = ParticleConfig(
        n_particles=1024, length=128, steps=steps, seed=seed,
        block_rows=8, compute_rate=2.0e5,
    )
    transport = TransportConfig(
        chunk_bytes=1024, retry=_PATIENT,
    ).with_faults(drop=0.08, duplicate=0.04, seed=seed + 300)
    return {
        "config": _single("particles", transport, 2, 1),
        "producer_main": particle_producer(
            particle_cfg, adaptive=True, interval=4, mesh="particles",
        ),
        "m": 2,
        "n": 1,
        "control": ControlConfig.from_xml_attrs(
            {"seed": str(seed), "repartition": "on", "interval": "4"}
        ),
        "meta": {"workload": "particle", "seed": seed, "steps": steps},
    }


def _request_stream(seed: int, quick: bool) -> dict:
    from repro.workloads.request_stream import (
        RequestStreamConfig,
        request_stream_producer,
    )

    steps = 6 if quick else 8
    stream_cfg = RequestStreamConfig(steps=steps, seed=seed)
    transport = TransportConfig(
        chunk_bytes=1024, retry=_PATIENT,
    ).with_faults(drop=0.06, seed=seed + 400)
    return {
        "config": stream_cfg.service_config(transport),
        "producer_main": request_stream_producer(stream_cfg),
        "m": 2,
        "n": 2,
        "control": ControlConfig.from_xml_attrs(
            {"seed": str(seed), "quota": "on", "interval": "2"}
        ),
        "meta": {"workload": "request-stream", "seed": seed, "steps": steps},
    }


def _codec(seed: int, quick: bool) -> dict:
    from repro.hamr.runtime import current_clock
    from repro.sensei.data_adaptor import TableDataAdaptor
    from repro.svtk.table import TableData

    steps = 4 if quick else 6

    def producer_main(sim_comm, bridge):
        clk = current_clock()
        for step in range(steps):
            clk.advance(0.25)
            # Zero-filled, size-varying payloads: highly compressible
            # and zlib-build-independent (see the module docstring).
            table = TableData("grid")
            table.add_host_column(
                "rho", np.zeros(2048 * (1 + step % 3), dtype=np.float64)
            )
            adaptor = TableDataAdaptor({"grid": table})
            adaptor.set_step(step, 0.25 * step)
            bridge.execute(adaptor)
        return step

    transport = TransportConfig(
        compression="adaptive", chunk_bytes=2048, retry=_PATIENT,
    )
    return {
        "config": _single("grid", transport, 1, 1),
        "producer_main": producer_main,
        "m": 1,
        "n": 1,
        "cost": None,
        "control": ControlConfig.from_xml_attrs({"seed": str(seed)}),
        "meta": {"workload": "codec", "seed": seed, "steps": steps},
    }


def _flow(seed: int, quick: bool) -> dict:
    from repro.hamr.runtime import current_clock
    from repro.mpi.comm import CommCostModel
    from repro.sensei.data_adaptor import TableDataAdaptor
    from repro.svtk.table import TableData

    steps = 4 if quick else 6

    def producer_main(sim_comm, bridge):
        clk = current_clock()
        rows = 4096
        for step in range(steps):
            clk.advance(0.5)
            table = TableData("stream")
            table.add_host_column(
                "x", np.arange(rows, dtype=np.float64) + step
            )
            adaptor = TableDataAdaptor({"stream": table})
            adaptor.set_step(step, 0.5 * step)
            bridge.execute(adaptor)
        return step

    transport = TransportConfig(
        compression="none", chunk_bytes=1024, pipelined=True,
        retry=_PATIENT,
    ).with_faults(
        drop=0.10, reorder=0.10, seed=seed + 500,
        congestion_bytes=16384, congestion_drop=0.5,
    )
    return {
        "config": _single("stream", transport, 1, 1),
        "producer_main": producer_main,
        "m": 1,
        "n": 1,
        "cost": CommCostModel(latency=us(5.0), bandwidth=gbs(0.05)),
        "control": ControlConfig.from_xml_attrs(
            {"seed": str(seed), "flow": "on"},
            flow_attrs={
                "min_credits": "2", "max_credits": "32",
                "min_chunk": "512", "max_chunk": "8192",
            },
        ),
        "meta": {"workload": "flow", "seed": seed, "steps": steps},
    }


def _repartition(seed: int, quick: bool) -> dict:
    entry = _stencil(seed, True)
    entry["meta"] = dict(entry["meta"], workload="repartition")
    return entry


_ENTRIES = {
    "newton": _newton,
    "stencil": _stencil,
    "particle": _particle,
    "request-stream": _request_stream,
    "codec": _codec,
    "flow": _flow,
    "repartition": _repartition,
}


def zoo_entry(name: str, seed: int = 0, quick: bool = True) -> dict:
    """The named scenario's ``record_service_run`` keyword set."""
    from repro.errors import ConfigError

    if name not in _ENTRIES:
        raise ConfigError(
            f"unknown zoo scenario {name!r}; "
            f"choose from {tuple(sorted(_ENTRIES))}"
        )
    return _ENTRIES[name](int(seed), bool(quick))


def record_zoo(name: str, seed: int = 0, quick: bool = True):
    """Record the named scenario from a fresh substrate.

    Returns ``(trace, producer_results, endpoints)``; the trace
    re-records byte-identically for any seed (the zoo's contract).
    """
    from repro.trace.harness import fresh_substrate
    from repro.trace.recorder import record_service_run

    entry = zoo_entry(name, seed=seed, quick=quick)
    fresh_substrate(f"zoo-{name}")
    return record_service_run(
        name,
        entry["config"],
        entry["producer_main"],
        m=entry["m"],
        n=entry["n"],
        cost=entry.get("cost"),
        control=entry.get("control"),
        meta=entry.get("meta"),
    )
