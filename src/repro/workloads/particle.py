"""An irregular particle workload with a migrating hotspot.

Structurally the opposite of the regular stencil: work per grid cell
follows the *particles*, and the particles follow a hotspot that
drifts across the (periodic) unit domain at ``hotspot_speed`` per
step.  Load skew therefore migrates — a static partition that was
balanced at step 0 is wrong by step 20 — which is exactly the shape
the adaptive repartitioner must chase rather than fix once.

The particle state is replicated: every rank integrates the identical
seeded system (positions/velocities from ``random.Random(seed)``,
float64 numerics), so no particle exchange is needed and the physics
is bit-identical across ranks and runs by construction.  What is
*distributed* is the density grid — a halo-1
:class:`~repro.array.array.DistributedArray` over ``length`` cells —
and the charged compute cost: each rank pays for the particles in the
cells it owns (hotspot particles cost ``hotspot_strength`` extra),
feeding per-block charges to the
:class:`~repro.array.coordinate.ArrayCoordinator` when ``adaptive``.

Runs standalone (:meth:`ParticleWorkload.run`), as a service producer
(:func:`particle_producer`), and under the array plane — the zoo's
"irregular" entry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.array.array import DistributedArray
from repro.array.coordinate import ArrayCoordinator
from repro.array.halo import HaloExchanger
from repro.array.partition import ArrayPartition
from repro.errors import ArrayError
from repro.hamr.runtime import current_clock
from repro.hw.node import num_devices
from repro.svtk.table import TableData

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plan import ControlPlane
    from repro.mpi.comm import Communicator
    from repro.transport.config import TransportConfig

__all__ = ["ParticleConfig", "ParticleWorkload", "particle_producer"]


@dataclass(frozen=True)
class ParticleConfig:
    """Everything one particle run needs (identical on every rank)."""

    n_particles: int = 2048
    length: int = 256              # density grid cells over [0, 1)
    steps: int = 16
    dt: float = 1.0                # simulation seconds per step
    seed: int = 7
    partitioner: str = "block"     # initial grid layout
    block_rows: int | None = None  # ownership granularity
    device_id: int | None = 0      # base device; rank r lands on
    #: ``(device_id + r) mod n_devices`` (None = host).  Spreading the
    #: ranks keeps per-device pools/streams single-writer, which the
    #: trace plane's byte-stable re-recording contract depends on.
    compute_rate: float = 2.0e6    # charged particle-updates per second
    #: Hotspot: a band of half-width ``hotspot_width / 2`` around a
    #: center that starts at ``hotspot_start`` and advances
    #: ``hotspot_speed`` (domain fractions) per step, wrapping.
    #: Particles inside it charge ``hotspot_strength`` extra updates
    #: each, and every particle drifts toward the center at ``drift``.
    hotspot_strength: float = 4.0
    hotspot_width: float = 0.125
    hotspot_speed: float = 0.03
    hotspot_start: float = 0.2
    drift: float = 0.05

    def __post_init__(self):
        if self.n_particles < 1:
            raise ArrayError(f"n_particles must be >= 1: {self.n_particles}")
        if self.steps < 1:
            raise ArrayError(f"steps must be >= 1: {self.steps}")
        if self.compute_rate <= 0:
            raise ArrayError(f"compute_rate must be > 0: {self.compute_rate}")
        if not 0.0 <= self.hotspot_width <= 1.0:
            raise ArrayError(
                f"hotspot_width must be in [0, 1]: {self.hotspot_width}"
            )
        if self.hotspot_strength < 0:
            raise ArrayError(
                f"hotspot_strength must be >= 0: {self.hotspot_strength}"
            )

    def hotspot_center(self, step: int) -> float:
        """The hotspot's center at ``step`` (periodic unit domain)."""
        return (self.hotspot_start + self.hotspot_speed * step) % 1.0


class ParticleWorkload:
    """One rank's view of the particle run (construct SPMD-identically)."""

    def __init__(
        self,
        comm: "Communicator",
        config: ParticleConfig,
        transport: "TransportConfig | None" = None,
        plane: "ControlPlane | None" = None,
        adaptive: bool = False,
        interval: int = 4,
        name: str = "particles",
    ):
        self.comm = comm
        self.config = config
        self.name = str(name)
        partition = ArrayPartition(
            config.length, comm.size,
            partitioner=config.partitioner,
            block_rows=config.block_rows,
        )
        device_id = config.device_id
        if device_id is not None:
            device_id = (int(device_id) + comm.rank) % max(1, num_devices())
        self.density = DistributedArray(
            comm, partition, dtype=np.float64, halo=1,
            device_id=device_id, name=name,
        )
        self.exchanger = HaloExchanger(comm, transport, name=name)
        self.coordinator: ArrayCoordinator | None = None
        if adaptive:
            self.coordinator = ArrayCoordinator(
                self.density, self.exchanger, plane=plane, interval=interval,
            )
        # Replicated seeded state: cross-version-stable Python RNG for
        # the draws, float64 numpy for the integration.
        rng = random.Random(config.seed)
        n = config.n_particles
        self.x = np.array([rng.random() for _ in range(n)], dtype=np.float64)
        self.v = np.array(
            [(rng.random() - 0.5) * 0.02 for _ in range(n)], dtype=np.float64
        )
        self.busy_time = 0.0
        self.steps_run = 0
        self._counts = np.zeros(config.length, dtype=np.float64)
        self._closed = False

    def _circular_delta(self, target: float, values: np.ndarray) -> np.ndarray:
        """Shortest signed distance from ``values`` to ``target`` mod 1."""
        return ((target - values + 0.5) % 1.0) - 0.5

    def cells(self) -> np.ndarray:
        """Each particle's density cell index."""
        cfg = self.config
        return np.minimum(
            (self.x * cfg.length).astype(np.int64), cfg.length - 1
        )

    def step(self, step: int) -> dict[int, float]:
        """Advance the particles; returns the per-block charged seconds."""
        if self._closed:
            raise ArrayError("particle workload already closed")
        cfg = self.config
        center = cfg.hotspot_center(step)
        pull = self._circular_delta(center, self.x)
        self.x = (self.x + (self.v + cfg.drift * pull) * cfg.dt) % 1.0
        cells = self.cells()
        counts = np.bincount(cells, minlength=cfg.length).astype(np.float64)
        self._counts = counts
        # Hotspot cells charge extra per particle.
        centers = (np.arange(cfg.length, dtype=np.float64) + 0.5) / cfg.length
        hot = (
            np.abs(self._circular_delta(center, centers))
            < cfg.hotspot_width / 2.0
        )
        weights = counts * (1.0 + cfg.hotspot_strength * hot)
        self.exchanger.exchange(self.density, step)
        clock = current_clock()
        block_busy: dict[int, float] = {}
        for b in sorted(self.density.shards):
            shard = self.density.shards[b]
            shard.interior[:] = counts[shard.start:shard.stop]
            cost = float(
                weights[shard.start:shard.stop].sum() / cfg.compute_rate
            )
            clock.advance(cost)
            block_busy[b] = cost
            self.busy_time += cost
        if self.coordinator is not None:
            self.coordinator.observe(step, block_busy, t=step * cfg.dt)
        self.steps_run += 1
        return block_busy

    def table(self) -> TableData:
        """The particles in this rank's owned cells (``id`` + ``x``)."""
        cells = self.cells()
        owned = np.zeros(cells.shape, dtype=bool)
        for _b, start, stop, _interior in self.density.local_spans():
            owned |= (cells >= start) & (cells < stop)
        ids = np.nonzero(owned)[0].astype(np.int64)
        table = TableData(self.name)
        table.add_host_column("id", ids)
        table.add_host_column("x", self.x[owned].astype(np.float64))
        return table

    def run(self, bridge=None, adaptor=None, mesh: str | None = None) -> dict:
        """Run every configured step; optionally publish through a bridge."""
        cfg = self.config
        if bridge is not None and adaptor is None:
            from repro.sensei.data_adaptor import TableDataAdaptor

            adaptor = TableDataAdaptor(comm=self.comm)
        for k in range(1, cfg.steps + 1):
            self.step(k)
            if bridge is not None:
                adaptor.set_table(mesh or self.name, self.table())
                adaptor.set_step(k, k * cfg.dt)
                bridge.execute(adaptor)
        return self.summary()

    def summary(self) -> dict:
        """Collective: checksums plus this rank's cost/traffic counters."""
        c = self.coordinator
        return {
            "steps": self.steps_run,
            "checksum": float(np.sum(self.x)),
            "density_sum": self.density.reduce("sum"),
            "busy_time": self.busy_time,
            "halo_bytes": self.exchanger.halo_bytes_moved,
            "handoff_bytes": self.exchanger.handoff_bytes_moved,
            "repartitions": c.repartitions if c is not None else 0,
            "blocks_moved": c.blocks_moved if c is not None else 0,
            "owners": tuple(self.density.partition.owners),
        }

    def close(self) -> None:
        """Collective: drain the exchanger's flows, free the shards."""
        if self._closed:
            return
        self.exchanger.close()
        self.density.close()
        self._closed = True


def particle_producer(
    config: ParticleConfig,
    transport: "TransportConfig | None" = None,
    adaptive: bool = False,
    interval: int = 4,
    mesh: str = "particles",
):
    """A ``producer_main`` for ``run_in_transit`` / ``run_service``.

    Each producer rank advances the replicated particle system and
    ships its owned particles through the bridge every step; the
    bridge's control plane (when attached) receives the repartition
    decisions.
    """

    def producer_main(sim_comm, bridge):
        workload = ParticleWorkload(
            sim_comm, config, transport=transport,
            plane=getattr(bridge, "control_plane", None),
            adaptive=adaptive, interval=interval, name=mesh,
        )
        try:
            result = workload.run(bridge=bridge, mesh=mesh)
        finally:
            workload.close()
        return result

    return producer_main
