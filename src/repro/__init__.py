"""repro — a reproduction of "Extensions to the SENSEI In situ Framework
for Heterogeneous Architectures" (Loring, Weber, Bethel, Mahoney;
SC-W 2023).

The package is organized bottom-up:

- :mod:`repro.hw` — virtual heterogeneous hardware (nodes, GPUs,
  discrete-event timelines, contention model);
- :mod:`repro.hamr` — the HAMR memory resource: allocators, streams,
  managed buffers, data movement, shared views;
- :mod:`repro.pm` — programming models (CUDA / HIP / OpenMP offload /
  host) and kernel launch;
- :mod:`repro.mpi` — an in-process SPMD MPI substitute;
- :mod:`repro.svtk` — the SENSEI data model: ``DataArray``,
  ``HAMRDataArray`` (the paper's contribution), tables, meshes, writers;
- :mod:`repro.sensei` — the in situ framework with the paper's
  execution-model extensions (lockstep/asynchronous execution, device
  placement, XML configuration);
- :mod:`repro.binning` — the data-binning analysis used in the
  evaluation;
- :mod:`repro.newton` — the Newton++ n-body simulation;
- :mod:`repro.harness` — the experiment harness regenerating Table 1
  and Figures 1-3.

Quickstart::

    import numpy as np
    from repro import (Allocator, HAMRDataArray, PMKind)

    arr = HAMRDataArray.new("simData", 1_000_000, allocator=Allocator.CUDA,
                            device_id=0)
    arr.fill(-3.14)
    view = arr.get_host_accessible()
    arr.synchronize()
    host_values = view.get()
"""

from repro.errors import ReproError
from repro.hamr import (
    Allocator,
    Buffer,
    PMKind,
    SharedView,
    Stream,
    StreamMode,
    accessible_view,
    current_clock,
    default_stream,
    get_active_device,
    set_active_device,
)
from repro.hw import (
    DeviceSpec,
    HostSpec,
    NodeSpec,
    SimClock,
    VirtualNode,
    get_node,
    num_devices,
    set_node,
)
from repro.pm import get_pm, launch

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # hamr
    "Allocator",
    "Buffer",
    "PMKind",
    "SharedView",
    "Stream",
    "StreamMode",
    "accessible_view",
    "current_clock",
    "default_stream",
    "get_active_device",
    "set_active_device",
    # hw
    "DeviceSpec",
    "HostSpec",
    "NodeSpec",
    "SimClock",
    "VirtualNode",
    "get_node",
    "num_devices",
    "set_node",
    # pm
    "get_pm",
    "launch",
    # populated lazily below
    "HAMRDataArray",
    "DataArray",
    "TableData",
    "UniformCartesianMesh",
]


def __getattr__(name: str):
    # Late imports so that `import repro` stays cheap and the data-model
    # layer can import the substrate without cycles.
    if name in ("HAMRDataArray", "DataArray", "TableData", "UniformCartesianMesh"):
        import repro.svtk as _svtk

        return getattr(_svtk, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
