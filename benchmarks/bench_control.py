"""Control-plane benchmark: adaptive governors vs the best static choice.

Two sweeps, each comparing the adaptive control plane against every
static configuration it chooses between:

- **Link-quality sweep** (codec governor): an in transit run shipping
  quantized particle data while the interconnect bandwidth sweeps from
  congested to fast.  Static ``none`` wins on a fast link (zlib's CPU
  charge outruns the bytes it saves), static ``zlib`` wins on a slow
  one; the adaptive run starts uncompressed, probes the payload, and
  must land within ``TOLERANCE`` of the best static at *both* ends of
  the sweep.

- **Step-cost sweep** (execution-mode governor): a purely in situ run
  whose analysis cost sweeps from trivial to exceeding the solver
  step.  Lockstep wins when the analysis is cheap (no deep-copy tax),
  asynchronous wins when it is heavy (the copy is all the simulation
  pays); adaptive starts lockstep and must track the winner at both
  ends.

Every governor decision is also emitted as a Chrome-trace instant
event (``--trace`` writes the JSON), so the switches are visible on
the same timeline as the work they re-routed.

Run standalone (``python benchmarks/bench_control.py [--quick]``,
exits nonzero if adaptivity misses the tolerance) or under pytest.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.control.plan import ControlConfig, ControlPlane
from repro.hamr.pool import reset_pools
from repro.hamr.runtime import current_clock, set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node
from repro.hw.trace import chrome_trace
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.svtk.table import TableData
from repro.transport import TransportConfig
from repro.units import gbs, us

#: Adaptivity must stay within this factor of the best static choice
#: at both ends of each sweep.
TOLERANCE = 1.05

CODEC_STEPS = 56
MODE_STEPS = 64
SOLVER_STEP_TIME = 1.0

FULL_BANDWIDTHS = (0.25, 0.5, 1.0, 4.0, 16.0, 50.0)   # GB/s
QUICK_BANDWIDTHS = (0.25, 50.0)
FULL_COSTS = (0.02, 0.1, 0.3, 0.6, 1.2)               # x solver step
QUICK_COSTS = (0.02, 1.2)


def fresh_substrate(name: str) -> None:
    """Benchmark points must not share clocks, pools, or devices."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


# -- link-quality sweep ------------------------------------------------------------


class NullAnalysis(AnalysisAdaptor):
    def __init__(self):
        super().__init__("null")
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.get_mesh("bodies").n_rows

    def process(self, payload, comm, device_id):
        pass


def run_codec_point(bandwidth_gbs: float, codec: str, steps: int, n_rows: int):
    """One in transit run; returns (total ship time, instant events)."""
    fresh_substrate(f"codec-{codec}-{bandwidth_gbs}")
    adaptive = codec == "adaptive"
    cfg = TransportConfig(compression=codec)
    control = ControlConfig() if adaptive else None

    def producer_main(sim_comm, bridge):
        rng = np.random.default_rng(bridge._world.rank)
        x = np.round(rng.standard_normal(n_rows), 2)  # compressible
        for step in range(steps):
            t = TableData("bodies")
            t.add_host_column("x", x)
            t.add_host_column("mass", np.full(n_rows, 0.01))
            da = TableDataAdaptor({"bodies": t})
            da.set_step(step, step * 1e-3)
            bridge.execute(da)
        plane = bridge.control_plane
        events = plane.chrome_instant_events() if plane is not None else []
        return bridge.total_apparent_time, events

    results, _endpoints = run_in_transit(
        InTransitLayout(m=2, n=1),
        producer_main,
        lambda: [NullAnalysis()],
        transport=cfg,
        cost=CommCostModel(latency=us(5.0), bandwidth=gbs(bandwidth_gbs)),
        control=control,
    )
    total = sum(r[0] for r in results)
    events = [e for r in results for e in r[1]]
    return total, events


def codec_sweep(bandwidths, steps=CODEC_STEPS, n_rows=8000):
    """{bandwidth: {codec: ship_time}} plus all decision events."""
    table = {}
    events = []
    for bw in bandwidths:
        row = {}
        for codec in ("none", "zlib", "adaptive"):
            total, evs = run_codec_point(bw, codec, steps, n_rows)
            row[codec] = total
            events.extend(evs)
        table[bw] = row
    return table, events


# -- step-cost sweep ---------------------------------------------------------------


class HeavyAnalysis(AnalysisAdaptor):
    """In situ work costing ``cost`` simulated seconds per step."""

    def __init__(self, cost: float):
        super().__init__("heavy")
        self.cost = cost
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.time_step

    def process(self, payload, comm, device_id):
        current_clock().advance(self.cost)


def run_mode_point(cost: float, mode: str, steps: int, n_rows: int = 1024):
    """One in situ run; returns (elapsed sim time, instant events)."""
    fresh_substrate(f"mode-{mode}-{cost}")
    bridge = Bridge()
    heavy = HeavyAnalysis(cost)
    if mode == "asynchronous":
        heavy.set_asynchronous()
    bridge.initialize(analyses=[heavy])
    plane = None
    if mode == "adaptive":
        plane = ControlPlane(ControlConfig())
        bridge.attach_control(plane)
    clk = current_clock()
    start = clk.now
    x = np.zeros(n_rows)
    for step in range(steps):
        clk.advance(SOLVER_STEP_TIME)
        t = TableData("bodies")
        t.add_host_column("x", x)
        da = TableDataAdaptor({"bodies": t})
        da.set_step(step, step * 1e-3)
        bridge.execute(da)
    bridge.finalize()
    events = plane.chrome_instant_events() if plane is not None else []
    return clk.now - start, events


def mode_sweep(costs, steps=MODE_STEPS):
    """{cost: {mode: elapsed}} plus all decision events."""
    table = {}
    events = []
    for cost in costs:
        row = {}
        for mode in ("lockstep", "asynchronous", "adaptive"):
            elapsed, evs = run_mode_point(cost, mode, steps)
            row[mode] = elapsed
            events.extend(evs)
        table[cost] = row
    return table, events


# -- scoring -----------------------------------------------------------------------


def check_ends(table, statics, label):
    """Adaptive within TOLERANCE of the best static at both sweep ends.

    Returns a list of human-readable failures (empty = pass).
    """
    failures = []
    points = sorted(table)
    for point in (points[0], points[-1]):
        row = table[point]
        best = min(row[s] for s in statics)
        if row["adaptive"] > TOLERANCE * best:
            failures.append(
                f"{label}={point}: adaptive {row['adaptive']:.4g}s exceeds "
                f"{TOLERANCE:.2f}x best static {best:.4g}s"
            )
    return failures


def format_table(table, statics, label):
    lines = [f"  {label:>10}  " + "".join(f"{s:>14}" for s in statics + ["adaptive"])]
    for point in sorted(table):
        row = table[point]
        lines.append(
            f"  {point:>10g}  "
            + "".join(f"{row[s]:>14.4g}" for s in statics + ["adaptive"])
        )
    return "\n".join(lines)


def run_all(quick: bool):
    bandwidths = QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS
    costs = QUICK_COSTS if quick else FULL_COSTS
    codec_table, codec_events = codec_sweep(bandwidths)
    mode_table, mode_events = mode_sweep(costs)
    failures = check_ends(codec_table, ["none", "zlib"], "GB/s")
    failures += check_ends(
        mode_table, ["lockstep", "asynchronous"], "cost"
    )
    if not codec_events:
        failures.append("codec sweep produced no governor decisions")
    if not mode_events:
        failures.append("mode sweep produced no governor decisions")
    return codec_table, mode_table, codec_events + mode_events, failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="sweep endpoints only (CI smoke mode)")
    ap.add_argument("--trace", metavar="PATH",
                    help="write decisions as a Chrome trace JSON")
    args = ap.parse_args(argv)

    codec_table, mode_table, events, failures = run_all(args.quick)

    print("link-quality sweep (total producer ship time, simulated s):")
    print(format_table(codec_table, ["none", "zlib"], "GB/s"))
    print("\nstep-cost sweep (total run time, simulated s):")
    print(format_table(mode_table, ["lockstep", "asynchronous"], "cost"))
    print(f"\ngovernor decisions: {len(events)}")

    if args.trace:
        with open(args.trace, "w") as f:
            json.dump(chrome_trace([], extra_events=events), f, indent=1)
        print(f"trace written to {args.trace}")

    if failures:
        print("\nFAIL: adaptive missed the best-static tolerance:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"\nOK: adaptive within {TOLERANCE:.2f}x of best static at "
          "both ends of both sweeps")
    return 0


# -- pytest entry points -----------------------------------------------------------


def test_codec_sweep_ends(benchmark):
    table, events = benchmark.pedantic(
        lambda: codec_sweep(QUICK_BANDWIDTHS, n_rows=4000),
        rounds=1, iterations=1,
    )
    assert not check_ends(table, ["none", "zlib"], "GB/s")
    assert any(e["ph"] == "i" for e in events)
    slow, fast = min(table), max(table)
    # The static envelope crosses: compression wins only on the slow link.
    assert table[slow]["zlib"] < table[slow]["none"]
    assert table[fast]["none"] < table[fast]["zlib"]
    benchmark.extra_info["decisions"] = len(events)


def test_mode_sweep_ends(benchmark):
    table, events = benchmark.pedantic(
        lambda: mode_sweep(QUICK_COSTS), rounds=1, iterations=1,
    )
    assert not check_ends(table, ["lockstep", "asynchronous"], "cost")
    assert any(e["ph"] == "i" for e in events)
    heavy = max(table)
    assert table[heavy]["asynchronous"] < table[heavy]["lockstep"]
    benchmark.extra_info["decisions"] = len(events)


if __name__ == "__main__":
    sys.exit(main())
