"""Control-plane benchmark: adaptive governors vs the best static choice.

Two sweeps, each comparing the adaptive control plane against every
static configuration it chooses between:

- **Link-quality sweep** (codec governor): an in transit run shipping
  quantized particle data while the interconnect bandwidth sweeps from
  congested to fast.  Static ``none`` wins on a fast link (zlib's CPU
  charge outruns the bytes it saves), static ``zlib`` wins on a slow
  one; the adaptive run starts uncompressed, probes the payload, and
  must land within ``TOLERANCE`` of the best static at *both* ends of
  the sweep.

- **Step-cost sweep** (execution-mode governor): a purely in situ run
  whose analysis cost sweeps from trivial to exceeding the solver
  step.  Lockstep wins when the analysis is cheap (no deep-copy tax),
  asynchronous wins when it is heavy (the copy is all the simulation
  pays); adaptive starts lockstep and must track the winner at both
  ends.

- **Crowding sweep** (cluster placement governor): N SPMD ranks all
  aimed at device 0 by Eq. 1 while background load pins devices 1 and
  2.  The per-rank placement governor sees only its own view, so every
  rank flees to the *same* calm device and the crowd just moves
  (flapping forever at dilated cost); the coordinated governor
  allreduces the load vectors, detects the crowding, and re-aims all
  ranks with one node-consistent placement that spreads them.
  Coordinated must converge to a non-overlapping assignment within 5
  control rounds and beat per-rank on total in situ time.

Every governor decision is also emitted as a Chrome-trace instant
event (``--trace`` writes the JSON), so the switches are visible on
the same timeline as the work they re-routed.

Run standalone (``python benchmarks/bench_control.py [--quick]``,
exits nonzero if adaptivity misses the tolerance) or under pytest.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.control.plan import ControlConfig, ControlPlane
from repro.hamr.pool import reset_pools
from repro.hamr.runtime import current_clock, set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.contention import ContentionModel, SharedResource
from repro.hw.node import VirtualNode, reset_node, set_node
from repro.hw.spec import NodeSpec
from repro.hw.trace import chrome_trace
from repro.mpi.comm import CommCostModel, run_spmd
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.sensei.placement import DevicePlacement
from repro.svtk.table import TableData
from repro.transport import TransportConfig
from repro.units import gbs, us

#: Adaptivity must stay within this factor of the best static choice
#: at both ends of each sweep.
TOLERANCE = 1.05

CODEC_STEPS = 56
MODE_STEPS = 64
SOLVER_STEP_TIME = 1.0

FULL_BANDWIDTHS = (0.25, 0.5, 1.0, 4.0, 16.0, 50.0)   # GB/s
QUICK_BANDWIDTHS = (0.25, 50.0)
FULL_COSTS = (0.02, 0.1, 0.3, 0.6, 1.2)               # x solver step
QUICK_COSTS = (0.02, 1.2)


def fresh_substrate(name: str) -> None:
    """Benchmark points must not share clocks, pools, or devices."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


# -- link-quality sweep ------------------------------------------------------------


class NullAnalysis(AnalysisAdaptor):
    def __init__(self):
        super().__init__("null")
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.get_mesh("bodies").n_rows

    def process(self, payload, comm, device_id):
        pass


def run_codec_point(bandwidth_gbs: float, codec: str, steps: int, n_rows: int):
    """One in transit run; returns (total ship time, instant events)."""
    fresh_substrate(f"codec-{codec}-{bandwidth_gbs}")
    adaptive = codec == "adaptive"
    cfg = TransportConfig(compression=codec)
    control = ControlConfig() if adaptive else None

    def producer_main(sim_comm, bridge):
        rng = np.random.default_rng(bridge._world.rank)
        x = np.round(rng.standard_normal(n_rows), 2)  # compressible
        for step in range(steps):
            t = TableData("bodies")
            t.add_host_column("x", x)
            t.add_host_column("mass", np.full(n_rows, 0.01))
            da = TableDataAdaptor({"bodies": t})
            da.set_step(step, step * 1e-3)
            bridge.execute(da)
        plane = bridge.control_plane
        events = plane.chrome_instant_events() if plane is not None else []
        return bridge.total_apparent_time, events

    results, _endpoints = run_in_transit(
        InTransitLayout(m=2, n=1),
        producer_main,
        lambda: [NullAnalysis()],
        transport=cfg,
        cost=CommCostModel(latency=us(5.0), bandwidth=gbs(bandwidth_gbs)),
        control=control,
    )
    total = sum(r[0] for r in results)
    events = [e for r in results for e in r[1]]
    return total, events


def codec_sweep(bandwidths, steps=CODEC_STEPS, n_rows=8000):
    """{bandwidth: {codec: ship_time}} plus all decision events."""
    table = {}
    events = []
    for bw in bandwidths:
        row = {}
        for codec in ("none", "zlib", "adaptive"):
            total, evs = run_codec_point(bw, codec, steps, n_rows)
            row[codec] = total
            events.extend(evs)
        table[bw] = row
    return table, events


# -- step-cost sweep ---------------------------------------------------------------


class HeavyAnalysis(AnalysisAdaptor):
    """In situ work costing ``cost`` simulated seconds per step."""

    def __init__(self, cost: float):
        super().__init__("heavy")
        self.cost = cost
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.time_step

    def process(self, payload, comm, device_id):
        current_clock().advance(self.cost)


def run_mode_point(cost: float, mode: str, steps: int, n_rows: int = 1024):
    """One in situ run; returns (elapsed sim time, instant events)."""
    fresh_substrate(f"mode-{mode}-{cost}")
    bridge = Bridge()
    heavy = HeavyAnalysis(cost)
    if mode == "asynchronous":
        heavy.set_asynchronous()
    bridge.initialize(analyses=[heavy])
    plane = None
    if mode == "adaptive":
        plane = ControlPlane(ControlConfig())
        bridge.attach_control(plane)
    clk = current_clock()
    start = clk.now
    x = np.zeros(n_rows)
    for step in range(steps):
        clk.advance(SOLVER_STEP_TIME)
        t = TableData("bodies")
        t.add_host_column("x", x)
        da = TableDataAdaptor({"bodies": t})
        da.set_step(step, step * 1e-3)
        bridge.execute(da)
    bridge.finalize()
    events = plane.chrome_instant_events() if plane is not None else []
    return clk.now - start, events


def mode_sweep(costs, steps=MODE_STEPS):
    """{cost: {mode: elapsed}} plus all decision events."""
    table = {}
    events = []
    for cost in costs:
        row = {}
        for mode in ("lockstep", "asynchronous", "adaptive"):
            elapsed, evs = run_mode_point(cost, mode, steps)
            row[mode] = elapsed
            events.extend(evs)
        table[cost] = row
    return table, events


# -- crowding sweep ----------------------------------------------------------------

CROWD_STEPS = 40
CROWD_DEVICES = 4
CROWD_BG = {1: 1.25, 2: 1.25}  # external load pinned to devices 1 and 2
CROWD_BASE = 0.5               # busy fraction each rank adds to its device
CONVERGENCE_ROUNDS = 5
FULL_RANKS = (2, 3, 4)


class IdleAnalysis(AnalysisAdaptor):
    """Does no work of its own; its Eq. 1 placement is what's governed."""

    def __init__(self):
        super().__init__("idle")
        self.set_placement(DevicePlacement.auto(n_use=1))  # all ranks -> 0

    def acquire(self, data, deep):
        return None

    def process(self, payload, comm, device_id):
        pass


def _crowding_control(mode: str) -> ControlConfig:
    attrs = {"execution": "off", "codec": "off", "pool": "off"}
    if mode == "coordinated":
        attrs["coordination"] = "node"
    return ControlConfig.from_xml_attrs(attrs)


def run_crowding_point(mode: str, ranks: int, steps: int = CROWD_STEPS):
    """One N-rank SPMD run; returns (total in situ time, first clean
    step, instant events).

    ``mode`` is ``static`` (no control), ``per-rank`` (each rank its own
    :class:`PlacementGovernor`), or ``coordinated`` (the cluster
    governor).  In situ cost per rank per step is ``CROWD_BASE`` dilated
    by the parties sharing its device (co-resolved ranks plus pinned
    background); the same node view feeds the governors, so the
    comparison is closed-form and deterministic.
    """
    fresh_substrate(f"crowd-{mode}-{ranks}")
    set_node(VirtualNode(NodeSpec().with_devices(CROWD_DEVICES)))
    cfg = _crowding_control(mode)

    def rank_main(comm):
        contention = ContentionModel()
        bridge = Bridge()
        analysis = IdleAnalysis()
        bridge.initialize(analyses=[analysis])
        plane = None
        if mode != "static":
            plane = ControlPlane(cfg, comm=comm)
            bridge.attach_control(plane)
            plane.wire_bridge(bridge)
        insitu_total = 0.0
        first_clean = None
        clk = current_clock()
        for step in range(steps):
            clk.advance(SOLVER_STEP_TIME)
            current = analysis.placement.resolve(
                comm.rank, n_available=CROWD_DEVICES
            )
            assignment = comm.allgather(current)
            counts = {d: assignment.count(d) for d in set(assignment)}
            if first_clean is None and len(set(assignment)) == len(assignment):
                first_clean = step
            parties = counts[current] - 1 + (1 if current in CROWD_BG else 0)
            cost = CROWD_BASE * contention.dilation(
                SharedResource.GPU_COMPUTE, parties
            )
            clk.advance(cost)
            insitu_total += cost
            if plane is not None:
                loads = dict(CROWD_BG)
                for d, c in counts.items():
                    dil = contention.dilation(
                        SharedResource.GPU_COMPUTE,
                        c - 1 + (1 if d in CROWD_BG else 0),
                    )
                    loads[d] = loads.get(d, 0.0) + c * CROWD_BASE * dil
                plane.observe_device_loads(step, loads, self_load=cost)
        events = plane.chrome_instant_events() if plane is not None else []
        return insitu_total, first_clean, events

    results = run_spmd(ranks, rank_main)
    total = sum(r[0] for r in results)
    first_clean = results[0][1]
    events = [e for r in results for e in r[2]]
    return total, first_clean, events


def crowding_sweep(rank_counts, steps=CROWD_STEPS):
    """({ranks: {mode: in situ time}}, {ranks: first clean step}, events)."""
    table = {}
    firsts = {}
    events = []
    for ranks in rank_counts:
        row = {}
        for mode in ("static", "per-rank", "coordinated"):
            total, first, evs = run_crowding_point(mode, ranks, steps)
            row[mode] = total
            if mode == "coordinated":
                firsts[ranks] = first
            events.extend(evs)
        table[ranks] = row
    return table, firsts, events


def check_crowding(table, firsts, events):
    """Coordinated beats per-rank, converges fast, and logs crowding."""
    failures = []
    for ranks in sorted(table):
        row = table[ranks]
        if row["coordinated"] >= row["per-rank"]:
            failures.append(
                f"ranks={ranks}: coordinated {row['coordinated']:.4g}s is "
                f"not better than per-rank {row['per-rank']:.4g}s"
            )
        first = firsts.get(ranks)
        if first is None or first > CONVERGENCE_ROUNDS:
            failures.append(
                f"ranks={ranks}: coordinated never reached a "
                f"non-overlapping assignment within {CONVERGENCE_ROUNDS} "
                f"control rounds (first clean step: {first})"
            )
    if not any("crowding" in e["name"] for e in events):
        failures.append("crowding sweep never logged a crowding event")
    return failures


# -- scoring -----------------------------------------------------------------------


def check_ends(table, statics, label):
    """Adaptive within TOLERANCE of the best static at both sweep ends.

    Returns a list of human-readable failures (empty = pass).
    """
    failures = []
    points = sorted(table)
    for point in (points[0], points[-1]):
        row = table[point]
        best = min(row[s] for s in statics)
        if row["adaptive"] > TOLERANCE * best:
            failures.append(
                f"{label}={point}: adaptive {row['adaptive']:.4g}s exceeds "
                f"{TOLERANCE:.2f}x best static {best:.4g}s"
            )
    return failures


def format_table(table, columns, label):
    lines = [f"  {label:>10}  " + "".join(f"{s:>14}" for s in columns)]
    for point in sorted(table):
        row = table[point]
        lines.append(
            f"  {point:>10g}  "
            + "".join(f"{row[s]:>14.4g}" for s in columns)
        )
    return "\n".join(lines)


def run_all(quick: bool, ranks: int = 2):
    bandwidths = QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS
    costs = QUICK_COSTS if quick else FULL_COSTS
    rank_counts = (ranks,) if quick else tuple(sorted({*FULL_RANKS, ranks}))
    codec_table, codec_events = codec_sweep(bandwidths)
    mode_table, mode_events = mode_sweep(costs)
    crowd_table, crowd_firsts, crowd_events = crowding_sweep(rank_counts)
    failures = check_ends(codec_table, ["none", "zlib"], "GB/s")
    failures += check_ends(
        mode_table, ["lockstep", "asynchronous"], "cost"
    )
    failures += check_crowding(crowd_table, crowd_firsts, crowd_events)
    if not codec_events:
        failures.append("codec sweep produced no governor decisions")
    if not mode_events:
        failures.append("mode sweep produced no governor decisions")
    events = codec_events + mode_events + crowd_events
    return codec_table, mode_table, crowd_table, crowd_firsts, events, failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="sweep endpoints only (CI smoke mode)")
    ap.add_argument("--ranks", type=int, default=2, metavar="N",
                    help="SPMD rank count for the crowding sweep "
                         "(default 2)")
    ap.add_argument("--trace", metavar="PATH",
                    help="write decisions as a Chrome trace JSON")
    args = ap.parse_args(argv)

    codec_table, mode_table, crowd_table, crowd_firsts, events, failures = (
        run_all(args.quick, ranks=args.ranks)
    )

    print("link-quality sweep (total producer ship time, simulated s):")
    print(format_table(codec_table, ["none", "zlib", "adaptive"], "GB/s"))
    print("\nstep-cost sweep (total run time, simulated s):")
    print(format_table(
        mode_table, ["lockstep", "asynchronous", "adaptive"], "cost"
    ))
    print("\ncrowding sweep (total in situ time, simulated s):")
    print(format_table(
        crowd_table, ["static", "per-rank", "coordinated"], "ranks"
    ))
    print("  coordinated convergence (first non-overlapping step): "
          + ", ".join(f"ranks={r}: {s}" for r, s in sorted(crowd_firsts.items())))
    print(f"\ngovernor decisions: {len(events)}")

    if args.trace:
        with open(args.trace, "w") as f:
            json.dump(chrome_trace([], extra_events=events), f, indent=1)
        print(f"trace written to {args.trace}")

    if failures:
        print("\nFAIL: adaptive missed the best-static tolerance:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"\nOK: adaptive within {TOLERANCE:.2f}x of best static at "
          "both ends of both sweeps, and coordinated placement beat "
          "per-rank on the crowding sweep")
    return 0


# -- pytest entry points -----------------------------------------------------------


def test_codec_sweep_ends(benchmark):
    table, events = benchmark.pedantic(
        lambda: codec_sweep(QUICK_BANDWIDTHS, n_rows=4000),
        rounds=1, iterations=1,
    )
    assert not check_ends(table, ["none", "zlib"], "GB/s")
    assert any(e["ph"] == "i" for e in events)
    slow, fast = min(table), max(table)
    # The static envelope crosses: compression wins only on the slow link.
    assert table[slow]["zlib"] < table[slow]["none"]
    assert table[fast]["none"] < table[fast]["zlib"]
    benchmark.extra_info["decisions"] = len(events)


def test_mode_sweep_ends(benchmark):
    table, events = benchmark.pedantic(
        lambda: mode_sweep(QUICK_COSTS), rounds=1, iterations=1,
    )
    assert not check_ends(table, ["lockstep", "asynchronous"], "cost")
    assert any(e["ph"] == "i" for e in events)
    heavy = max(table)
    assert table[heavy]["asynchronous"] < table[heavy]["lockstep"]
    benchmark.extra_info["decisions"] = len(events)


def test_crowding_sweep_coordinated_beats_per_rank(benchmark):
    table, firsts, events = benchmark.pedantic(
        lambda: crowding_sweep((2, 4)), rounds=1, iterations=1,
    )
    assert not check_crowding(table, firsts, events)
    for ranks in (2, 4):
        row = table[ranks]
        # Per-rank governors flap between calm devices and never beat
        # the crowd; coordination spreads the ranks and wins outright.
        assert row["coordinated"] < row["per-rank"] <= row["static"]
        assert firsts[ranks] <= CONVERGENCE_ROUNDS
    assert any("crowding" in e["name"] for e in events)
    benchmark.extra_info["decisions"] = len(events)


if __name__ == "__main__":
    sys.exit(main())
