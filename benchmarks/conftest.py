"""Benchmark fixtures: clean substrate state per benchmark."""

from __future__ import annotations

import pytest

from repro.hamr.pool import reset_pools
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node


@pytest.fixture(autouse=True)
def clean_substrate():
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name="bench"))
    set_active_device(0)
    yield
    reset_node()
    reset_default_streams()
    reset_pools()
