"""Ablation — is the dedicated-device penalty a workload artifact?

The paper finds the dedicated-device placements slower and attributes
it to "the reduced levels of concurrency" (3 or 2 ranks/node instead of
4).  This ablation probes whether that is specific to the evaluated
workload or structural: sweep the in situ load over two orders of
magnitude and compare placements under asynchronous execution.

Result (asserted): the shared placements stay ahead at *every* load.
The reason is structural for a compute-bound, embarrassingly parallel
solver — reserving GPUs for analysis scales the solver time up by the
lost-GPU fraction (x4/3 and x2), while the in situ work per rank is the
same for every placement; overlap means the analysis costs the shared
placements only the contention sliver, which never approaches the
solver's concurrency loss.  Dedicated devices can only pay off when the
solver does not scale with its GPU count (e.g. communication-bound
regimes) — exactly the kind of boundary the paper's planned profiling
("opportunities for improving performance when assigning one or two
dedicated devices") would look for on real hardware.
"""

from __future__ import annotations

import dataclasses

from repro.harness.calibrate import PaperWorkload
from repro.harness.runner import simulate
from repro.harness.spec import InSituPlacement, RunSpec
from repro.sensei.execution import ExecutionMethod
from repro.units import ms

OVERHEADS_MS = [5.0, 20.0, 50.0, 100.0, 200.0, 400.0]
A = ExecutionMethod.ASYNCHRONOUS
SHARED = (InSituPlacement.HOST, InSituPlacement.SAME_DEVICE)
DEDICATED = (InSituPlacement.DEDICATED_1, InSituPlacement.DEDICATED_2)


def _totals(overhead_ms: float) -> dict[InSituPlacement, float]:
    w = dataclasses.replace(PaperWorkload(), insitu_op_overhead=ms(overhead_ms))
    return {p: simulate(RunSpec(p, A), w).total_time for p in InSituPlacement}


def test_ablation_dedicated_placements(benchmark):
    table = benchmark.pedantic(
        lambda: [(o, _totals(o)) for o in OVERHEADS_MS], rounds=1, iterations=1
    )

    print(f"\n{'overhead':>9} | "
          + " | ".join(f"{p.value:>20}" for p in InSituPlacement))
    for o, totals in table:
        best = min(totals, key=totals.get)
        print(
            f"{o:7.1f}ms | "
            + " | ".join(f"{totals[p]:19.1f}s" for p in InSituPlacement)
            + f"   <- best: {best.value}"
        )
        # The paper's ordering is robust: at every in situ load some
        # shared placement beats every dedicated placement.
        best_shared = min(totals[p] for p in SHARED)
        worst_needed = min(totals[p] for p in DEDICATED)
        assert best_shared < worst_needed, (o, totals)

    # The gap *narrows* as in situ load grows (the dedicated GPUs absorb
    # more useful work), confirming the trend the trade-off implies.
    def rel_gap(totals):
        return min(totals[p] for p in DEDICATED) / min(totals[p] for p in SHARED)

    first, last = dict(table)[OVERHEADS_MS[0]], dict(table)[OVERHEADS_MS[-1]]
    assert rel_gap(last) < rel_gap(first)
    print(
        f"dedicated/shared total-time ratio: {rel_gap(first):.3f} at "
        f"{OVERHEADS_MS[0]} ms/op -> {rel_gap(last):.3f} at {OVERHEADS_MS[-1]} ms/op"
    )
