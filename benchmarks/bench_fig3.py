"""Figure 3 — average per-iteration solver and in situ time (stacked).

Two parts:

1. **Paper scale** (cost model): the per-iteration decomposition for
   all eight cases, asserting Section 4.4's observations — apparent
   asynchronous in situ cost is tiny (<10 ms; "this makes it look like
   in situ is effectively free"), yet the solver is slowed in every
   placement relative to lockstep.
2. **Real stack** (small scale): the same eight cases run end to end
   through Newton++ -> SENSEI -> binning on one virtual node, verifying
   that the genuine code paths show the same apparent-vs-actual
   asynchronous signature.
"""

from __future__ import annotations

from repro.harness.calibrate import SmallWorkload
from repro.harness.report import format_fig3, verify_findings
from repro.harness.runner import execute_small, simulate
from repro.harness.spec import InSituPlacement, table1_matrix
from repro.sensei.execution import ExecutionMethod

L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS


def test_fig3_per_iteration_breakdown(benchmark):
    results = benchmark(lambda: [simulate(s) for s in table1_matrix()])

    print()
    print(format_fig3(results))

    findings = verify_findings(results)
    assert findings["async_apparent_insitu_is_small"], findings
    assert findings["async_slows_solver_in_all_placements"], findings

    by = {(r.spec.placement, r.spec.method): r for r in results}
    for p in InSituPlacement:
        # "<10ms across all time steps and all placements"
        assert by[(p, A)].insitu_apparent_per_iter < 0.010
        # ... while the actual analysis work is far larger (overlapped).
        assert by[(p, A)].insitu_actual_per_iter > 10 * by[
            (p, A)
        ].insitu_apparent_per_iter
        slowdown = (
            by[(p, A)].solver_per_iter / by[(p, L)].solver_per_iter - 1.0
        )
        print(f"solver slowdown under async at {p.value!r}: {100 * slowdown:.2f}%")
        assert slowdown > 0.0


def test_fig3_real_stack_cross_check(benchmark):
    """The genuine pipeline reproduces the async signature at small scale.

    The node is slowed down (:func:`scaled_node_spec`) so the simulated
    solver dominates the iteration at laptop body counts, as it does at
    paper scale; the workload is sized so in situ work dominates the
    asynchronous hand-off's deep copy.
    """
    from repro.harness.calibrate import scaled_node_spec

    w = SmallWorkload(n_bodies=1200, steps=3, n_coordinate_systems=4,
                      n_variables=3, bins=(32, 32))
    node = scaled_node_spec()

    def run_all():
        return [
            execute_small(spec, w, node_spec=node)
            for spec in table1_matrix(nodes=1)
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by = {(r.spec.placement, r.spec.method): r for r in results}
    print()
    for p in InSituPlacement:
        rl, ra = by[(p, L)], by[(p, A)]
        print(
            f"{p.value:>22}: lockstep insitu/iter="
            f"{1e3 * rl.insitu_apparent_per_iter:8.3f} ms | async apparent="
            f"{1e3 * ra.insitu_apparent_per_iter:8.3f} ms actual="
            f"{1e3 * ra.insitu_actual_per_iter:8.3f} ms"
        )
        # Lockstep blocks for the full analysis; async hides most of it.
        assert ra.insitu_apparent_per_iter < rl.insitu_apparent_per_iter
        assert ra.insitu_actual_per_iter > ra.insitu_apparent_per_iter
