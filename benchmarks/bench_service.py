"""Service-plane benchmark: weighted-fair admission vs naive sharing.

A population of bulk pipelines with bursty on/off arrivals shares a
small pool of in-transit endpoints with one latency-sensitive
high-priority tenant.  Every pipeline's reliable channel rides the
same shallow-pipe congestion model (the :class:`LoadBoard` lets the
fault injector see the *sum* of all tenants' in-flight bytes per
endpoint), so when a burst of bulk tenants floods an endpoint the
high-priority tenant's chunks start dropping and its step latency
tail grows retransmission backoff.

Two runs of the identical seeded workload are compared:

- **naive** — no admission control: every sender keeps its static
  credit window, first-come first-served on the shared pipe (the
  pre-service behavior);
- **fair** — ``<control quota="on">``: the QuotaGovernor partitions
  each endpoint's credit budget by tenant weight (the high-priority
  tenant carries weight ``HI_WEIGHT``), reclaiming idle bursty
  tenants' quota AIMD-style, while the ShardGovernor may migrate a
  dominant tenant off a skewed endpoint at a step boundary.

The benchmark fails (exit 1) unless weighted-fair admission beats
naive sharing on p99 step latency for the high-priority tenant while
aggregate throughput stays within ``THROUGHPUT_TOLERANCE``.  The full
shape drives 16 pipelines x 12 producers + 8 endpoints = 200 simulated
ranks; ``--quick`` is the CI smoke shape (one producer per pipeline).
``--json`` (default ``BENCH_service.json``) records the headline
numbers for the perf trajectory.

Run standalone: ``python benchmarks/bench_service.py [--quick]``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

import numpy as np

from repro.control.plan import ControlConfig
from repro.hamr.pool import reset_pools
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.service import LoadBoard, PipelineSpec, ServiceConfig, run_service
from repro.svtk.table import TableData
from repro.transport import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.units import KiB, gbs, us

try:
    from benchmarks.emit import add_json_arg, percentile, write_bench_json
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from emit import add_json_arg, percentile, write_bench_json

#: Fair admission must not cost more than this fraction of naive
#: aggregate throughput.
THROUGHPUT_TOLERANCE = 0.10

HI = "hi-pri"
HI_WEIGHT = 8.0
SEED = 23
BANDWIDTH = gbs(1.0)
LATENCY = us(40.0)

def _retry(shape: "Shape") -> RetryPolicy:
    """Generous retries (bursts cause storms), a backoff curve heavy
    enough that loss costs simulated time, and a wall ACK timeout wide
    enough for the shape's endpoint turnaround under 200 live ranks."""
    return RetryPolicy(
        max_retries=60, ack_timeout=shape.ack_timeout,
        backoff_base=us(500.0), backoff_max=us(5000.0),
    )


@dataclass(frozen=True)
class Shape:
    """One benchmark scale: rank counts, workload sizes, fair budget."""

    pipelines: int        # bulk tenants + the one high-priority tenant
    producers_per: int    # dedicated producer ranks per pipeline
    endpoints: int
    steps: int
    budget: int           # per-endpoint credit budget in fair mode
    bulk_rows: int        # float64 rows per bulk producer per step
    hi_rows: int          # rows per high-priority producer per step
    congestion_kib: int   # shallow-pipe capacity per endpoint
    ack_timeout: float = 0.02  # wall seconds before a retransmit
    interval: int = 2     # control rounds every this many steps
    warmup: int = 4       # steps the governors get before p99 scoring
    burst_period: int = 4
    burst_on: int = 3     # bulk tenants publish this many steps per period
    congestion_drop: float = 0.5

    @property
    def ranks(self) -> int:
        return self.pipelines * self.producers_per + self.endpoints


FULL = Shape(pipelines=16, producers_per=12, endpoints=8, steps=16,
             budget=96, bulk_rows=2048, hi_rows=256, congestion_kib=144,
             ack_timeout=0.25, warmup=8)
QUICK = Shape(pipelines=16, producers_per=2, endpoints=4, steps=16,
              budget=32, bulk_rows=2048, hi_rows=256, congestion_kib=48)


def fresh_substrate(name: str) -> None:
    """Compared runs must not share clocks, pools, or devices."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


class NullAnalysis(AnalysisAdaptor):
    def __init__(self, mesh: str):
        super().__init__(f"null-{mesh}")
        self.mesh = mesh
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.get_mesh(self.mesh).n_rows

    def process(self, payload, comm, device_id):
        pass


def bursty(tenant: int, step: int, shape: Shape) -> bool:
    """Deterministic staggered on/off schedule for bulk tenant i."""
    return (step + tenant) % shape.burst_period < shape.burst_on


def _transport(shape: Shape) -> TransportConfig:
    cfg = TransportConfig(
        compression="none", chunk_bytes=4096, max_inflight=8,
        retry=_retry(shape), pipelined=True,
    )
    return cfg.with_faults(
        drop=0.0, seed=SEED,
        congestion_bytes=shape.congestion_kib * KiB,
        congestion_drop=shape.congestion_drop,
    )


def tenant_names(shape: Shape) -> list[str]:
    """The high-priority tenant plus ``pipelines - 1`` bulk tenants."""
    return [HI] + [f"bulk{i:02d}" for i in range(shape.pipelines - 1)]


def service_config(shape: Shape) -> ServiceConfig:
    transport = _transport(shape)
    specs = []
    for i, name in enumerate(tenant_names(shape)):
        lo = i * shape.producers_per
        specs.append(PipelineSpec(
            name=name,
            weight=HI_WEIGHT if name == HI else 1.0,
            ranks=tuple(range(lo, lo + shape.producers_per)),
            transport=transport,
            # The high-priority tenant is the paper's collective viz
            # consumer: it spans every endpoint, so each endpoint sees
            # it contend with the local bulk tenants.
            collective=(name == HI),
        ))
    return ServiceConfig(
        pipelines=tuple(specs),
        budget=shape.budget,
        skew=2.0,
        cooldown=2,
        interval=shape.interval,
    )


def _fair_control(shape: Shape) -> ControlConfig:
    return ControlConfig.from_xml_attrs(
        {"execution": "off", "codec": "off", "placement": "off",
         "pool": "off", "flow": "off", "quota": "on",
         "interval": str(shape.interval)},
    )


def run_mode(shape: Shape, fair: bool) -> dict:
    """One full service run; returns the per-mode result summary."""
    label = "fair" if fair else "naive"
    fresh_substrate(f"service-{label}")
    config = service_config(shape)
    names = tenant_names(shape)
    owner = {}  # producer rank -> (tenant index, tenant name)
    for i, name in enumerate(names):
        for r in config.spec(name).ranks:
            owner[r] = (i, name)

    def producer_main(sim_comm, bridge):
        idx, mine = owner[sim_comm.rank]
        rows = shape.hi_rows if mine == HI else shape.bulk_rows
        column = np.full(rows, float(sim_comm.rank))
        for step in range(shape.steps):
            meshes = {}
            if mine == HI or bursty(idx, step, shape):
                table = TableData(mine)
                table.add_host_column("x", column)
                meshes[mine] = table
            adaptor = TableDataAdaptor(meshes)
            adaptor.set_step(step, step * 1e-3)
            bridge.execute(adaptor)
        plane = bridge.control_plane
        decisions = (
            [d.governor for d in plane.decisions]
            if plane is not None and sim_comm.rank == 0 else []
        )
        return {
            "tenant": mine,
            "costs": list(bridge.pipeline_step_costs[mine]),
            "total": sum(bridge.step_costs),
            "metrics": bridge.pipeline_metrics(mine),
            "decisions": decisions,
        }

    registry = {name: (lambda n=name: [NullAnalysis(n)]) for name in names}
    results, _endpoints = run_service(
        config, producer_main, registry,
        m=shape.pipelines * shape.producers_per,
        n=shape.endpoints,
        cost=CommCostModel(latency=LATENCY, bandwidth=BANDWIDTH),
        control=_fair_control(shape) if fair else None,
        load_board=LoadBoard(),
    )
    # p99 is scored on steady-state steps: the quota governor only
    # actuates from the first control round, exactly like the flow
    # governor's WARMUP exclusion in bench_flow.
    hi_costs = [
        c for r in results if r["tenant"] == HI
        for c in r["costs"][shape.warmup:]
    ]
    raw_bytes = sum(r["metrics"]["raw_bytes"] for r in results)
    retries = sum(r["metrics"]["retries"] for r in results)
    makespan = max(r["total"] for r in results)
    decisions = {}
    for r in results:
        for governor in r["decisions"]:
            decisions[governor] = decisions.get(governor, 0) + 1
    return {
        "mode": label,
        "hi_p50_s": percentile(hi_costs, 50),
        "hi_p99_s": percentile(hi_costs, 99),
        "throughput_bps": raw_bytes / makespan,
        "raw_bytes": raw_bytes,
        "retries": retries,
        "makespan_s": makespan,
        "decisions": decisions,
    }


def check_service(naive: dict, fair: dict) -> list[str]:
    """Fair beats naive on the hi-pri tail without starving the rest."""
    failures = []
    if fair["hi_p99_s"] >= naive["hi_p99_s"]:
        failures.append(
            f"fair p99 {fair['hi_p99_s']:.4g}s does not beat naive "
            f"{naive['hi_p99_s']:.4g}s for the high-priority tenant"
        )
    floor = (1.0 - THROUGHPUT_TOLERANCE) * naive["throughput_bps"]
    if fair["throughput_bps"] < floor:
        failures.append(
            f"fair throughput {fair['throughput_bps']:.4g} B/s fell "
            f"below {floor:.4g} B/s "
            f"({THROUGHPUT_TOLERANCE:.0%} under naive)"
        )
    if not fair["decisions"].get("quota"):
        failures.append("the quota governor never decided in fair mode")
    if naive["decisions"]:
        failures.append("naive mode unexpectedly ran admission rounds")
    return failures


def format_table(naive: dict, fair: dict) -> str:
    columns = ("hi_p50_s", "hi_p99_s", "throughput_bps", "retries")
    lines = ["  " + f"{'mode':>8}  " + "".join(f"{c:>16}" for c in columns)]
    for row in (naive, fair):
        lines.append(
            f"  {row['mode']:>8}  "
            + "".join(f"{row[c]:>16.4g}" for c in columns)
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small rank count (CI smoke mode)")
    add_json_arg(ap, default="BENCH_service.json")
    args = ap.parse_args(argv)

    shape = QUICK if args.quick else FULL
    print(f"service benchmark: {shape.pipelines} pipelines x "
          f"{shape.producers_per} producers + {shape.endpoints} endpoints "
          f"= {shape.ranks} ranks, {shape.steps} steps")
    naive = run_mode(shape, fair=False)
    fair = run_mode(shape, fair=True)
    failures = check_service(naive, fair)

    print(format_table(naive, fair))
    rounds = ", ".join(
        f"{g}={n}" for g, n in sorted(fair["decisions"].items())
    )
    print(f"fair-mode admission rounds: {rounds or '(none)'}")

    if args.json:
        write_bench_json(
            args.json, "service",
            metrics={
                "pipelines": shape.pipelines,
                "ranks": shape.ranks,
                "steps": shape.steps,
                "naive": naive,
                "fair": fair,
            },
            detail={"quick": bool(args.quick)},
        )
        print(f"metrics written to {args.json}")

    if failures:
        print("\nFAIL: fair-share admission missed the tolerance:")
        for line in failures:
            print(f"  - {line}")
        return 1
    gain = naive["hi_p99_s"] / fair["hi_p99_s"]
    print(f"\nOK: fair admission cut the high-priority p99 by "
          f"{gain:.2f}x with aggregate throughput within "
          f"{THROUGHPUT_TOLERANCE:.0%} of naive")
    return 0


# -- pytest entry points -----------------------------------------------------------


def test_service_bench_quick(benchmark):
    naive, fair = benchmark.pedantic(
        lambda: (run_mode(QUICK, fair=False), run_mode(QUICK, fair=True)),
        rounds=1, iterations=1,
    )
    assert not check_service(naive, fair)
    benchmark.extra_info["hi_p99_gain"] = (
        naive["hi_p99_s"] / fair["hi_p99_s"]
    )


if __name__ == "__main__":
    sys.exit(main())
