"""Extension bench — the placement study across machine sizes.

Not a paper figure: the paper fixes 128 nodes.  This bench answers the
obvious follow-on with the same model — do the Section 4.4 findings
hold at other machine sizes, and how does the in situ share move under
strong scaling?  (As the solver's per-rank work shrinks, the analysis
becomes a growing fraction of the iteration, so the async advantage
*increases* with scale.)
"""

from __future__ import annotations

from repro.harness.scaling import parallel_efficiency, strong_scaling
from repro.harness.spec import InSituPlacement
from repro.sensei.execution import ExecutionMethod
from repro.units import fmt_time

NODES = [32, 64, 128, 256, 512]
L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS


def test_scaling_study(benchmark):
    lock, asyn = benchmark(
        lambda: (
            strong_scaling(InSituPlacement.SAME_DEVICE, L, NODES),
            strong_scaling(InSituPlacement.SAME_DEVICE, A, NODES),
        )
    )

    eff = parallel_efficiency(lock)
    print(f"\n{'nodes':>6} | {'iter (lockstep)':>16} | {'iter (async)':>14} | "
          f"{'async saving':>12} | {'strong eff.':>11}")
    prev_saving = -1.0
    for pl, pa, e in zip(lock, asyn, eff):
        saving = 1.0 - pa.result.total_time / pl.result.total_time
        print(
            f"{pl.nodes:>6} | {fmt_time(pl.iter_time):>16} | "
            f"{fmt_time(pa.iter_time):>14} | {100 * saving:>11.2f}% | "
            f"{e:>10.3f}"
        )
        # The async advantage holds at every machine size...
        assert saving > 0.0
        # ...and grows with scale (the solver shrinks, the analysis
        # share grows).
        assert saving > prev_saving
        prev_saving = saving

    # Strong-scaling efficiency decays but stays meaningful at 512 nodes.
    assert eff[0] == 1.0
    assert 0.3 < eff[-1] < 1.0
