"""Workload-zoo benchmark: record/replay cost and the fixpoint gate.

Runs every zoo workload (newton, stencil, particle, request-stream)
through the trace plane three times — **record** a seeded run,
**replay** the recorded trace through the live service, **re-record**
during that replay — and fails (exit 1) unless every re-recording is
byte-identical to the original trace.  This is the same contract the
golden-trace tests pin for the small single-governor scenarios,
exercised here across the zoo's four structural shapes at benchmark
scale.

Alongside the gate it reports the trace plane's footprint per
workload: recorded events, trace bytes, publishes, governor decisions,
wire retries, and the simulated makespan — the numbers that tell you
whether a recorder change made traces heavier.  ``--json`` (default
``BENCH_zoo.json``) records them for the perf trajectory; ``--quick``
uses the short step counts (the CI smoke shape).

Run standalone: ``python benchmarks/bench_zoo.py [--quick] [--seed N]``.
"""

from __future__ import annotations

import argparse
import sys

from repro.trace import diff_traces, replay_trace
from repro.workloads import ZOO_WORKLOADS, record_zoo

try:
    from benchmarks.emit import add_json_arg, write_bench_json
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from emit import add_json_arg, write_bench_json

SEED = 17


def run_workload(name: str, seed: int, quick: bool) -> dict:
    """Record one zoo workload, replay it, and gate the fixpoint."""
    trace, _producers, _endpoints = record_zoo(name, seed=seed, quick=quick)
    recorded = trace.to_jsonl()
    result = replay_trace(recorded)
    replayed = result.trace.to_jsonl()
    kinds: dict[str, int] = {}
    for event in trace.events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    return {
        "workload": name,
        "fixpoint": replayed == recorded,
        "diff": diff_traces(trace, result.trace, limit=5),
        "events": len(trace.events),
        "trace_bytes": len(recorded),
        "publishes": kinds.get("publish", 0),
        "decisions": kinds.get("decision", 0),
        "observations": kinds.get("obs", 0),
        "retries": sum(c["retries"] for c in trace.counters),
        "drops_recovered": sum(
            c["drops_recovered"] for c in trace.counters
        ),
        "wire_bytes": sum(c["wire_bytes"] for c in trace.counters),
        "makespan_s": max(
            (event["entry"] for event in trace.events if "entry" in event),
            default=0.0,
        ),
    }


def format_table(rows: list[dict]) -> str:
    columns = (
        "events", "trace_bytes", "publishes", "decisions", "retries",
        "makespan_s",
    )
    head = f"  {'workload':>16}  " + "".join(f"{c:>14}" for c in columns)
    lines = [head]
    for row in rows:
        lines.append(
            f"  {row['workload']:>16}  "
            + "".join(f"{row[c]:>14.4g}" for c in columns)
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="short step counts (CI smoke mode)")
    ap.add_argument("--seed", type=int, default=SEED,
                    help=f"scenario seed (default {SEED})")
    add_json_arg(ap, default="BENCH_zoo.json")
    args = ap.parse_args(argv)

    shape = "quick" if args.quick else "full"
    print(f"zoo benchmark: {len(ZOO_WORKLOADS)} workloads, "
          f"{shape} shape, seed {args.seed}")
    rows = [
        run_workload(name, args.seed, args.quick)
        for name in ZOO_WORKLOADS
    ]
    print(format_table(rows))

    failures = []
    for row in rows:
        if not row["fixpoint"]:
            failures.append(
                f"{row['workload']}: replay did not re-record "
                "byte-identically:\n    " + "\n    ".join(row["diff"])
            )

    if args.json:
        write_bench_json(
            args.json, "zoo",
            metrics={
                row["workload"]: {
                    k: v for k, v in row.items()
                    if k not in ("workload", "diff")
                }
                for row in rows
            },
            detail={"quick": bool(args.quick), "seed": int(args.seed)},
        )
        print(f"metrics written to {args.json}")

    if failures:
        print("\nFAIL: the record/replay fixpoint broke:")
        for line in failures:
            print(f"  - {line}")
        return 1
    total = sum(row["events"] for row in rows)
    print(f"\nOK: all {len(rows)} workloads replayed bit-identically "
          f"({total} recorded events)")
    return 0


# -- pytest entry points -----------------------------------------------------------


def test_zoo_bench_quick(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_workload(n, SEED, True) for n in ZOO_WORKLOADS],
        rounds=1, iterations=1,
    )
    assert all(row["fixpoint"] for row in rows)
    benchmark.extra_info["events"] = sum(row["events"] for row in rows)


if __name__ == "__main__":
    sys.exit(main())
