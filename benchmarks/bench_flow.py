"""Flow-control benchmark: the AIMD governor vs every static choice.

A drop-rate x link-latency sweep over the reliable transport, with the
two opt-in physics knobs that make window and chunk size matter:

- ``pipelined="true"``: each transmitted chunk charges
  ``latency / in_flight + bytes / bandwidth``, so a deep credit window
  amortizes link latency and a small chunk size multiplies it;
- ``congestion_kib`` / ``congestion_drop``: a shallow-pipe loss model —
  driving more in-flight bytes than the pipe holds inflates the drop
  probability, so a deep window with big chunks triggers retransmission
  storms whose backoff is charged to the simulated clock.

At the fat-and-clean end of the sweep (high latency, no loss) the best
static ``(max_inflight, chunk_bytes)`` is the deep/big corner; at the
congested end (low latency, base drops, a shallow pipe) it is the
shallow/small corner.  No single static wins both.  The adaptive run
(``<control flow="on">``) starts mid-grid, grows its window and chunk
rung on the clean link, shrinks multiplicatively when the congested
pipe pushes the retry-rate EWMA over the hysteresis band, and must land
within ``TOLERANCE`` of the best static at *both* ends — scored on
steady-state steps (after ``WARMUP``) so the comparison measures the
converged window, not the first probe.

Every flow decision is also emitted as a Chrome-trace instant event
(``--trace`` writes the JSON), so window moves are visible on the same
timeline as the transfers they re-shaped.

Run standalone (``python benchmarks/bench_flow.py [--quick]``, exits
nonzero if adaptivity misses the tolerance) or under pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

import numpy as np

from repro.control.plan import ControlConfig
from repro.hamr.pool import reset_pools
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node
from repro.hw.trace import chrome_trace
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.svtk.table import TableData
from repro.transport import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.units import KiB, gbs, us

try:
    from benchmarks.emit import add_json_arg, percentile, write_bench_json
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from emit import add_json_arg, percentile, write_bench_json

#: Adaptive must stay within this factor of the best static grid point
#: at both ends of the sweep (steady-state steps).
TOLERANCE = 1.10
#: ...and the static envelope itself must spread at least this much at
#: each end, or the sweep would prove nothing about the knobs.
SPREAD = 1.30

STEPS = 24
WARMUP = 8     # steps the governor gets to converge before scoring
N_ROWS = 4096  # one float64 column: a 32 KiB wire payload per step

#: The static grid the governor competes against (and its bounds).
WINDOWS = (2, 8)
CHUNKS = (2048, 8192)
FLOW_ATTRS = {
    "min_credits": "2", "max_credits": "8",
    "min_chunk": "2048", "max_chunk": "8192",
}

#: Generous retries (congested points see storms), short wall ACK
#: timeout (lost chunks stall the thread for real seconds), and a
#: backoff curve heavy enough that loss visibly costs simulated time.
RETRY = RetryPolicy(
    max_retries=60, ack_timeout=0.02,
    backoff_base=us(500.0), backoff_max=us(5000.0),
)
BANDWIDTH = gbs(1.0)
SEED = 11


@dataclass(frozen=True)
class FlowPoint:
    """One sweep point: a link quality the transport must live with."""

    key: str
    drop: float           # base per-frame loss probability
    latency_us: float     # one-way link latency
    congestion_kib: int   # shallow-pipe capacity (0 = no congestion)
    congestion_drop: float


FULL_POINTS = (
    FlowPoint("fat-clean", drop=0.00, latency_us=400.0,
              congestion_kib=0, congestion_drop=0.0),
    FlowPoint("mid", drop=0.01, latency_us=50.0,
              congestion_kib=16, congestion_drop=0.08),
    FlowPoint("congested", drop=0.02, latency_us=5.0,
              congestion_kib=8, congestion_drop=0.15),
)
QUICK_POINTS = (FULL_POINTS[0], FULL_POINTS[-1])


def fresh_substrate(name: str) -> None:
    """Benchmark points must not share clocks, pools, or devices."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


class NullAnalysis(AnalysisAdaptor):
    def __init__(self):
        super().__init__("null")
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.get_mesh("bodies").n_rows

    def process(self, payload, comm, device_id):
        pass


def _transport(point: FlowPoint, window: int, chunk: int) -> TransportConfig:
    cfg = TransportConfig(
        compression="none", chunk_bytes=chunk, max_inflight=window,
        retry=RETRY, pipelined=True,
    )
    return cfg.with_faults(
        drop=point.drop, seed=SEED,
        congestion_bytes=point.congestion_kib * KiB,
        congestion_drop=point.congestion_drop,
    )


def _flow_control() -> ControlConfig:
    return ControlConfig.from_xml_attrs(
        {"execution": "off", "codec": "off", "placement": "off",
         "pool": "off", "flow": "on"},
        flow_attrs=dict(FLOW_ATTRS),
    )


def run_flow_point(point: FlowPoint, window: int, chunk: int,
                   adaptive: bool, steps: int = STEPS):
    """One producer/endpoint run; returns (per-step ship times,
    flow decision dicts, instant events, transport metrics)."""
    label = "adaptive" if adaptive else f"w{window}c{chunk}"
    fresh_substrate(f"flow-{point.key}-{label}")
    cfg = _transport(point, window, chunk)
    control = _flow_control() if adaptive else None

    def producer_main(sim_comm, bridge):
        x = np.zeros(N_ROWS)
        for step in range(steps):
            t = TableData("bodies")
            t.add_host_column("x", x)
            da = TableDataAdaptor({"bodies": t})
            da.set_step(step, step * 1e-3)
            bridge.execute(da)
        plane = bridge.control_plane
        decisions = (
            [d.to_dict() for d in plane.decisions
             if d.governor == "flow"]
            if plane is not None else []
        )
        events = plane.chrome_instant_events() if plane is not None else []
        return (bridge.step_costs, decisions, events,
                bridge.pipeline_metrics("bodies"))

    results, _endpoints = run_in_transit(
        InTransitLayout(m=1, n=1),
        producer_main,
        lambda: [NullAnalysis()],
        transport=cfg,
        cost=CommCostModel(latency=us(point.latency_us), bandwidth=BANDWIDTH),
        control=control,
    )
    return results[0]


def _score(step_costs, warmup: int) -> float:
    """Steady-state ship time: the sum after the convergence window."""
    return sum(step_costs[warmup:])


def flow_sweep(points, steps: int = STEPS, warmup: int = WARMUP):
    """({point.key: {config: steady ship time}}, {key: decisions},
    events, {key: adaptive steady-state stats}).

    Configs are every static grid corner plus ``adaptive``; the same
    warmup exclusion applies to all of them.
    """
    table = {}
    decisions = {}
    events = []
    stats = {}
    for point in points:
        row = {}
        for window in WINDOWS:
            for chunk in CHUNKS:
                costs, _, _, _ = run_flow_point(point, window, chunk,
                                                adaptive=False, steps=steps)
                row[f"w{window}c{chunk}"] = _score(costs, warmup)
        costs, decs, evs, metrics = run_flow_point(
            point, WINDOWS[0] * 2, CHUNKS[0] * 2, adaptive=True, steps=steps
        )
        row["adaptive"] = _score(costs, warmup)
        steady = costs[warmup:]
        stats[point.key] = {
            "p50_s": percentile(steady, 50),
            "p99_s": percentile(steady, 99),
            "throughput_bps": len(steady) * N_ROWS * 8 / sum(steady),
            "retries": metrics["retries"],
        }
        table[point.key] = row
        decisions[point.key] = decs
        events.extend(evs)
    return table, decisions, events, stats


def static_names():
    return [f"w{w}c{c}" for w in WINDOWS for c in CHUNKS]


def check_flow(points, table, decisions):
    """Adaptive within TOLERANCE of best static at both sweep ends,
    the static envelope spreads, and the governor visibly steered."""
    failures = []
    for point in (points[0], points[-1]):
        row = table[point.key]
        statics = [row[s] for s in static_names()]
        best, worst = min(statics), max(statics)
        if row["adaptive"] > TOLERANCE * best:
            failures.append(
                f"{point.key}: adaptive {row['adaptive']:.4g}s exceeds "
                f"{TOLERANCE:.2f}x best static {best:.4g}s"
            )
        if worst < SPREAD * best:
            failures.append(
                f"{point.key}: static envelope too flat "
                f"({worst:.4g}s vs {best:.4g}s): the knobs don't matter "
                "at this point"
            )
        if not decisions[point.key]:
            failures.append(f"{point.key}: the flow governor never decided")
    clean_acts = [d["action"] for d in decisions[points[0].key]]
    if not any("chunk=8192" in a for a in clean_acts):
        failures.append(
            "fat-clean end: the chunk rung never climbed to the top"
        )
    lossy = decisions[points[-1].key]
    if not any("multiplicative decrease" in d["reason"] for d in lossy):
        failures.append(
            "congested end: the governor never shrank on the retry spike"
        )
    return failures


def format_table(table, points):
    columns = static_names() + ["adaptive"]
    lines = ["  " + f"{'link':>12}  " + "".join(f"{c:>12}" for c in columns)]
    for point in points:
        row = table[point.key]
        lines.append(
            f"  {point.key:>12}  "
            + "".join(f"{row[c]:>12.4g}" for c in columns)
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="sweep endpoints only (CI smoke mode)")
    ap.add_argument("--trace", metavar="PATH",
                    help="write flow decisions as a Chrome trace JSON")
    add_json_arg(ap, default="BENCH_flow.json")
    args = ap.parse_args(argv)

    points = QUICK_POINTS if args.quick else FULL_POINTS
    table, decisions, events, stats = flow_sweep(points)
    failures = check_flow(points, table, decisions)

    print("flow sweep (steady-state producer ship time, simulated s):")
    print(format_table(table, points))
    n_dec = sum(len(d) for d in decisions.values())
    print(f"\nflow decisions: {n_dec}")
    for point in points:
        trail = ", ".join(d["action"] for d in decisions[point.key])
        print(f"  {point.key}: {trail or '(none)'}")

    if args.trace:
        with open(args.trace, "w") as f:
            json.dump(chrome_trace([], extra_events=events), f, indent=1)
        print(f"trace written to {args.trace}")

    if args.json:
        write_bench_json(
            args.json, "flow",
            metrics={key: dict(stats[key]) for key in sorted(stats)},
            detail={"table": table, "quick": bool(args.quick),
                    "decisions": {k: len(v) for k, v in
                                  sorted(decisions.items())}},
        )
        print(f"metrics written to {args.json}")

    if failures:
        print("\nFAIL: the flow governor missed the tolerance:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"\nOK: adaptive within {TOLERANCE:.2f}x of the best static "
          "(window, chunk) at both ends of the sweep")
    return 0


# -- pytest entry points -----------------------------------------------------------


def test_flow_sweep_ends(benchmark):
    table, decisions, events, _stats = benchmark.pedantic(
        lambda: flow_sweep(QUICK_POINTS), rounds=1, iterations=1,
    )
    assert not check_flow(QUICK_POINTS, table, decisions)
    assert any(e["ph"] == "i" for e in events)
    clean, lossy = QUICK_POINTS[0].key, QUICK_POINTS[-1].key
    # The static envelope crosses: the deep/big corner wins the clean
    # fat link, the shallow/small corner wins the congested one.
    assert (
        table[clean][f"w{max(WINDOWS)}c{max(CHUNKS)}"]
        < table[clean][f"w{min(WINDOWS)}c{min(CHUNKS)}"]
    )
    assert (
        table[lossy][f"w{min(WINDOWS)}c{min(CHUNKS)}"]
        < table[lossy][f"w{max(WINDOWS)}c{max(CHUNKS)}"]
    )
    benchmark.extra_info["decisions"] = sum(
        len(d) for d in decisions.values()
    )


if __name__ == "__main__":
    sys.exit(main())
