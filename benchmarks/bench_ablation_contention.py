"""Ablation — how strong can contention get before async stops paying?

The paper finds asynchronous execution worthwhile *despite* slowing the
solver.  That balance depends on the contention between the overlapped
analysis and the solver: dilate shared-resource work enough and the
solver slowdown eats the hidden in situ time.  This ablation sweeps a
uniform contention factor over all shared resources and reports, per
placement, the async-vs-lockstep saving — locating the break-even
point the paper's trade-off sits inside.
"""

from __future__ import annotations

from repro.harness.calibrate import PaperWorkload
from repro.harness.runner import simulate
from repro.harness.spec import InSituPlacement, RunSpec, table1_matrix
from repro.hw.contention import ContentionModel, SharedResource
from repro.sensei.execution import ExecutionMethod

FACTORS = [1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0]
L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS


def _uniform_model(factor: float) -> ContentionModel:
    return ContentionModel(factors={r: factor for r in SharedResource})


def _savings(factor: float) -> dict[InSituPlacement, float]:
    model = _uniform_model(factor)
    w = PaperWorkload()
    out = {}
    for p in InSituPlacement:
        t_l = simulate(RunSpec(p, L), w, contention=model).total_time
        t_a = simulate(RunSpec(p, A), w, contention=model).total_time
        out[p] = 1.0 - t_a / t_l
    return out


def test_ablation_contention_factor(benchmark):
    table = benchmark(lambda: [(f, _savings(f)) for f in FACTORS])

    print(f"\n{'factor':>7} | " + " | ".join(f"{p.value:>20}" for p in InSituPlacement))
    breakeven: dict[InSituPlacement, float | None] = {p: None for p in InSituPlacement}
    for f, savings in table:
        print(
            f"{f:7.1f} | "
            + " | ".join(f"{100 * savings[p]:19.2f}%" for p in InSituPlacement)
        )
        for p, s in savings.items():
            if s <= 0 and breakeven[p] is None:
                breakeven[p] = f

    first = dict(table)[FACTORS[0]]
    # With no contention, async saving ~= the full lockstep in situ share.
    assert all(s > 0.05 for s in first.values())
    # At the defaults (<= 1.3) async still wins everywhere (the paper's
    # finding); at extreme contention it must eventually lose somewhere.
    defaults = _savings(1.3)
    assert all(s > 0 for s in defaults.values())
    extreme = dict(table)[FACTORS[-1]]
    assert any(s < first[p] for p, s in extreme.items())
    for p, f in breakeven.items():
        print(f"break-even factor for {p.value!r}: "
              f"{f if f is not None else f'>{FACTORS[-1]}'}")
