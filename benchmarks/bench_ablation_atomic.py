"""Ablation — the GPU atomic-update penalty and the optimized kernels.

Two questions behind the paper's Section 4.4/5 remarks:

1. The host-vs-same-device tie rests on "data binning is not an ideal
   algorithm for GPUs since it requires the use of atomic memory
   updates".  Sweep the atomic penalty: at what contention level does
   the GPU lose its streaming advantage?
2. The planned optimization ("achieve a speed up on the GPU relative to
   the CPU"): with the privatized/sorted strategies, where does the GPU
   beat the CPU, independent of the atomic penalty?
"""

from __future__ import annotations

import dataclasses

from repro.binning.reduce import ReductionOp
from repro.binning.strategies import BinningStrategy, strategy_kernel_cost
from repro.hw.device import HostCPU, VirtualDevice
from repro.hw.spec import DeviceSpec

N_ROWS = 1_000_000
N_CELLS = 256 * 256
PENALTIES = [1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 48.0]


def _gpu_time(penalty: float, strategy: BinningStrategy) -> float:
    gpu = VirtualDevice(0, dataclasses.replace(DeviceSpec(), atomic_update_penalty=penalty))
    c = strategy_kernel_cost(strategy, N_ROWS, N_CELLS, ReductionOp.SUM)
    return gpu.kernel_time(
        flops=c.flops, bytes_moved=c.bytes_moved, atomic_fraction=c.atomic_fraction
    )


def _cpu_time() -> float:
    cpu = HostCPU()
    c = strategy_kernel_cost(BinningStrategy.ATOMIC, N_ROWS, N_CELLS, ReductionOp.SUM)
    # A rank's share of the node: 16 of 64 cores (4 ranks/node).
    return cpu.kernel_time(
        flops=c.flops, bytes_moved=c.bytes_moved,
        atomic_fraction=c.atomic_fraction, cores=16,
    )


def test_ablation_atomic_penalty(benchmark):
    rows = benchmark(
        lambda: [
            (p, _gpu_time(p, BinningStrategy.ATOMIC)) for p in PENALTIES
        ]
    )
    cpu = _cpu_time()
    sorted_gpu = _gpu_time(24.0, BinningStrategy.SORTED)

    print(f"\nCPU reference (16-core rank share): {1e6 * cpu:9.1f} us")
    print(f"{'penalty':>8} | {'GPU atomic':>12} | vs CPU")
    crossover = None
    for p, t in rows:
        ratio = t / cpu
        marker = "GPU wins" if ratio < 1.0 else "CPU wins"
        if ratio >= 1.0 and crossover is None:
            crossover = p
        print(f"{p:8.1f} | {1e6 * t:10.1f}us | {ratio:5.2f}x  {marker}")
    print(f"GPU sorted strategy (any penalty):  {1e6 * sorted_gpu:9.1f} us")

    # With no contention the GPU's bandwidth advantage wins...
    assert rows[0][1] < cpu
    # ...at the calibrated penalty (24x) it has lost it — the tie.
    assert dict(rows)[24.0] > cpu
    assert crossover is not None and 1.0 < crossover <= 24.0
    # The optimized kernel restores the GPU win regardless of penalty.
    assert sorted_gpu < cpu
    print(f"crossover penalty where the GPU advantage disappears: ~{crossover}")
