"""Table 1 — the placement-study run matrix.

Regenerates the eight-case matrix and validates its rank/GPU accounting
against the rows printed in the paper.  The wall-clock benchmark
measures matrix generation + formatting (trivial by design — Table 1 is
configuration, not computation; it exists so the bench suite covers
every table and figure).
"""

from __future__ import annotations

from repro.harness.report import format_table1
from repro.harness.spec import InSituPlacement, table1_matrix
from repro.sensei.execution import ExecutionMethod

#: The paper's Table 1 rows: (method, ranks/node, total ranks, location).
PAPER_ROWS = [
    ("lock step", 4, 512, InSituPlacement.HOST),
    ("lock step", 4, 512, InSituPlacement.SAME_DEVICE),
    ("lock step", 3, 384, InSituPlacement.DEDICATED_1),
    ("lock step", 2, 256, InSituPlacement.DEDICATED_2),
    ("asynchr.", 4, 512, InSituPlacement.HOST),
    ("asynchr.", 4, 512, InSituPlacement.SAME_DEVICE),
    ("asynchr.", 3, 384, InSituPlacement.DEDICATED_1),
    ("asynchr.", 2, 256, InSituPlacement.DEDICATED_2),
]


def test_table1_matrix(benchmark):
    text = benchmark(lambda: format_table1(table1_matrix()))

    specs = table1_matrix()
    assert len(specs) == len(PAPER_ROWS)
    for spec, (method, rpn, total, placement) in zip(specs, PAPER_ROWS):
        expected = (
            ExecutionMethod.LOCKSTEP if method == "lock step"
            else ExecutionMethod.ASYNCHRONOUS
        )
        assert spec.method is expected
        assert spec.ranks_per_node == rpn
        assert spec.total_ranks == total
        assert spec.placement is placement
        assert spec.nodes == 128

    print()
    print(text)
