"""Array-plane benchmark: adaptive repartitioning vs static partitions.

A bandwidth-bound Jacobi heat stencil runs over a
:class:`~repro.array.DistributedArray` under a sweep of injected load
skews: a hotspot region whose rows charge extra simulated compute
(numerics untouched).  Three layouts race on the identical seeded
workload:

- **block** — static contiguous partition: minimal halo surface, but
  the hotspot lands on one rank;
- **cyclic** — static round-robin partition: spreads the hotspot, but
  every block boundary crosses ranks, maximizing halo traffic (all of
  it charged through the transport cost model);
- **adaptive** — starts as block; the
  :class:`~repro.control.repartition.RepartitionGovernor` watches
  allreduced per-rank busy time and halo bytes and re-cuts the
  partition with the ``chain`` partitioner (contiguous *and*
  cost-balanced), shipping shards through the reliable channel.

The benchmark fails (exit 1) unless adaptive stays within
``UNIFORM_TOLERANCE`` of the best static layout when the load is
uniform (the governor must not thrash) and strictly beats the best
static layout under every injected skew.  ``--json`` (default
``BENCH_array.json``) records the sweep for the perf trajectory;
``--trace PATH`` writes a Chrome trace of the adaptive skewed run
(halo/handoff transport timelines plus governor instant events).

Run standalone: ``python benchmarks/bench_array.py [--quick]``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, replace

from repro.array import StencilConfig, StencilWorkload
from repro.control.plan import ControlConfig, ControlPlane
from repro.hamr.pool import reset_pools
from repro.hamr.runtime import (
    current_clock,
    set_active_device,
    set_current_clock,
)
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node
from repro.mpi import run_spmd
from repro.mpi.comm import CommCostModel
from repro.units import gbs, us

try:
    from benchmarks.emit import add_json_arg, write_bench_json
except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
    from emit import add_json_arg, write_bench_json

#: Adaptive may cost at most this fraction over the best static layout
#: when the load is uniform (no-thrash bound).
UNIFORM_TOLERANCE = 0.10

BANDWIDTH = gbs(2.0)
LATENCY = us(20.0)


@dataclass(frozen=True)
class Shape:
    """One benchmark scale (identical workload across all layouts)."""

    ranks: int
    length: int
    steps: int
    block_rows: int
    interval: int           # coordination rounds every this many steps
    skews: tuple[float, ...]  # hotspot row-cost multiples (0 = uniform)
    #: The hotspot covers 11 of 128 ownership blocks at the full shape
    #: — indivisible by the rank count, so round-robin cannot balance
    #: it either; only a cost-weighted re-cut can.
    hotspot: tuple[float, float] = (0.0, 0.0859375)
    compute_rate: float = 2.0e6


FULL = Shape(ranks=8, length=16384, steps=32, block_rows=128,
             interval=4, skews=(0.0, 3.0, 6.0))
QUICK = Shape(ranks=4, length=2048, steps=16, block_rows=128,
              interval=4, skews=(0.0, 6.0))


def fresh_substrate(name: str) -> None:
    """Compared runs must not share clocks, pools, or devices."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


def stencil_config(shape: Shape, skew: float) -> StencilConfig:
    return StencilConfig(
        length=shape.length,
        steps=shape.steps,
        block_rows=shape.block_rows,
        compute_rate=shape.compute_rate,
        hotspot=shape.hotspot,
        hotspot_cost=skew,
        hotspot_from=1,
    )


def _control(shape: Shape) -> ControlConfig:
    return ControlConfig.from_xml_attrs(
        {"execution": "off", "codec": "off", "placement": "off",
         "pool": "off", "repartition": "on",
         "interval": str(shape.interval)},
    )


def run_mode(shape: Shape, skew: float, mode: str, trace: str | None = None):
    """One stencil run under ``mode`` ('block'/'cyclic'/'adaptive')."""
    fresh_substrate(f"array-{mode}-{skew:g}")
    adaptive = mode == "adaptive"
    config = stencil_config(shape, skew)
    if not adaptive:
        config = replace(config, partitioner=mode)

    def main(comm):
        plane = (
            ControlPlane(_control(shape), comm=comm) if adaptive else None
        )
        workload = StencilWorkload(
            comm, config, plane=plane,
            adaptive=adaptive, interval=shape.interval,
        )
        workload.run()
        # Per-rank makespan *before* the collective summary/close
        # aligns the clocks: compute charges + halo/handoff wire time
        # + coordination rounds, all simulated seconds.
        elapsed = current_clock().now
        events = []
        if trace and comm.rank == 0:
            from repro.hw.trace import chrome_trace

            timelines = [
                s.timeline
                for _k, s in sorted(workload.exchanger._senders.items())
            ]
            extra = (
                plane.chrome_instant_events() if plane is not None else []
            )
            events = chrome_trace(timelines, extra_events=extra)
        summary = workload.summary()
        workload.close()
        return {
            "elapsed": elapsed,
            "summary": summary,
            "decisions": (
                len(plane.decisions) if plane is not None else 0
            ),
            "trace": events,
        }

    out = run_spmd(
        shape.ranks, main,
        cost=CommCostModel(latency=LATENCY, bandwidth=BANDWIDTH),
    )
    makespan = max(r["elapsed"] for r in out)
    s0 = out[0]["summary"]
    if trace:
        events = [e for r in out for e in r["trace"]]
        with open(trace, "w") as f:
            json.dump(events, f)
    return {
        "mode": mode,
        "skew": skew,
        "makespan_s": makespan,
        "checksum": s0["checksum"],
        "halo_bytes": sum(r["summary"]["halo_bytes"] for r in out),
        "handoff_bytes": sum(r["summary"]["handoff_bytes"] for r in out),
        "repartitions": s0["repartitions"],
        "decisions": max(r["decisions"] for r in out),
    }


def run_sweep(shape: Shape, trace: str | None = None) -> list[dict]:
    rows = []
    for skew in shape.skews:
        for mode in ("block", "cyclic", "adaptive"):
            want_trace = trace if (mode == "adaptive" and skew) else None
            rows.append(run_mode(shape, skew, mode, trace=want_trace))
    return rows


def check_array(rows: list[dict]) -> list[str]:
    """Adaptive within tolerance on uniform load, strictly better
    than the best static layout under every injected skew."""
    failures = []
    by_skew: dict[float, dict[str, dict]] = {}
    for r in rows:
        by_skew.setdefault(r["skew"], {})[r["mode"]] = r
    for skew in sorted(by_skew):
        modes = by_skew[skew]
        static = min(
            modes["block"]["makespan_s"], modes["cyclic"]["makespan_s"]
        )
        adaptive = modes["adaptive"]["makespan_s"]
        checksums = {m: r["checksum"] for m, r in sorted(modes.items())}
        if max(checksums.values()) - min(checksums.values()) > 1e-9:
            failures.append(
                f"skew {skew:g}: layouts disagree on physics: {checksums}"
            )
        if skew == 0.0:
            if adaptive > (1.0 + UNIFORM_TOLERANCE) * static:
                failures.append(
                    f"uniform load: adaptive {adaptive:.4g}s exceeds "
                    f"{UNIFORM_TOLERANCE:.0%} over best static "
                    f"{static:.4g}s"
                )
            if modes["adaptive"]["repartitions"]:
                failures.append(
                    "uniform load: the governor repartitioned anyway"
                )
        else:
            if adaptive >= static:
                failures.append(
                    f"skew {skew:g}: adaptive {adaptive:.4g}s does not "
                    f"beat best static {static:.4g}s"
                )
            if not modes["adaptive"]["repartitions"]:
                failures.append(
                    f"skew {skew:g}: the governor never repartitioned"
                )
    return failures


def format_table(rows: list[dict]) -> str:
    columns = ("makespan_s", "halo_bytes", "handoff_bytes", "repartitions")
    lines = ["  " + f"{'skew':>6} {'mode':>10}  "
             + "".join(f"{c:>14}" for c in columns)]
    for r in rows:
        lines.append(
            f"  {r['skew']:>6g} {r['mode']:>10}  "
            + "".join(f"{r[c]:>14.6g}" for c in columns)
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small shape (CI smoke mode)")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="write a Chrome trace of the adaptive skewed run")
    add_json_arg(ap, default="BENCH_array.json")
    args = ap.parse_args(argv)

    shape = QUICK if args.quick else FULL
    print(f"array benchmark: {shape.ranks} ranks, {shape.length} rows, "
          f"{shape.steps} steps, skews {shape.skews}")
    rows = run_sweep(shape, trace=args.trace)
    failures = check_array(rows)

    print(format_table(rows))
    if args.trace:
        print(f"chrome trace written to {args.trace}")

    if args.json:
        write_bench_json(
            args.json, "array",
            metrics={
                "ranks": shape.ranks,
                "length": shape.length,
                "steps": shape.steps,
                "sweep": rows,
            },
            detail={"quick": bool(args.quick),
                    "uniform_tolerance": UNIFORM_TOLERANCE},
        )
        print(f"metrics written to {args.json}")

    if failures:
        print("\nFAIL: adaptive repartitioning missed the tolerance:")
        for line in failures:
            print(f"  - {line}")
        return 1
    best = {}
    for r in rows:
        best.setdefault(r["skew"], {})[r["mode"]] = r["makespan_s"]
    gains = ", ".join(
        f"{skew:g}x: {min(m['block'], m['cyclic']) / m['adaptive']:.2f}x"
        for skew, m in sorted(best.items()) if skew
    )
    print(f"\nOK: adaptive beat the best static layout under every "
          f"injected skew (gain {gains}) and stayed within "
          f"{UNIFORM_TOLERANCE:.0%} on uniform load")
    return 0


# -- pytest entry points -----------------------------------------------------------


def test_array_bench_quick(benchmark):
    rows = benchmark.pedantic(
        lambda: run_sweep(QUICK), rounds=1, iterations=1
    )
    assert not check_array(rows)
    by = {}
    for r in rows:
        by.setdefault(r["skew"], {})[r["mode"]] = r["makespan_s"]
    skew = max(by)
    benchmark.extra_info["skew_gain"] = (
        min(by[skew]["block"], by[skew]["cyclic"]) / by[skew]["adaptive"]
    )


if __name__ == "__main__":
    sys.exit(main())
