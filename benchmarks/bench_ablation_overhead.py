"""Ablation — the SENSEI per-operation overhead calibration knob.

`insitu_op_overhead` (see `repro/harness/calibrate.py`) is the one
reproduction-specific calibration parameter: the fixed cost of each of
the 90 binning operations beyond its kernels and collectives.  This
ablation sweeps it and shows that the paper's qualitative findings are
*robust* to the knob — the async-beats-lockstep and placement orderings
hold across two orders of magnitude — while the async saving scales
with the in situ share, as it must.
"""

from __future__ import annotations

import dataclasses

from repro.harness.calibrate import PaperWorkload
from repro.harness.report import verify_findings
from repro.harness.runner import simulate
from repro.harness.spec import InSituPlacement, RunSpec, table1_matrix
from repro.sensei.execution import ExecutionMethod
from repro.units import ms

OVERHEADS_MS = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0]
L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS


def _case(overhead_ms: float):
    w = dataclasses.replace(PaperWorkload(), insitu_op_overhead=ms(overhead_ms))
    results = [simulate(s, w) for s in table1_matrix()]
    findings = verify_findings(results)
    by = {(r.spec.placement, r.spec.method): r for r in results}
    host_l = by[(InSituPlacement.HOST, L)]
    host_a = by[(InSituPlacement.HOST, A)]
    share = host_l.insitu_apparent_per_iter / host_l.iter_time
    saving = 1.0 - host_a.total_time / host_l.total_time
    return findings, share, saving


def test_ablation_insitu_overhead(benchmark):
    table = benchmark(lambda: [(o, *_case(o)) for o in OVERHEADS_MS])

    print(f"\n{'overhead':>9} | {'insitu share':>12} | {'async saving':>12} | findings")
    prev_saving = -1.0
    for o, findings, share, saving in table:
        ok = all(findings.values())
        print(f"{o:7.1f}ms | {100 * share:11.1f}% | {100 * saving:11.1f}% | "
              f"{'all hold' if ok else 'VIOLATED: ' + str([k for k, v in findings.items() if not v])}")
        # The findings are robust across the sweep.
        assert ok, (o, findings)
        # Async saving grows monotonically with the in situ share.
        assert saving > prev_saving
        prev_saving = saving

    shares = [share for _, _, share, _ in table]
    assert shares[0] < 0.05 < shares[-1]  # the sweep spans thin to fat in situ
