"""Figure 1 — n-body state plus x-y and x-z mass-sum binning grids.

The paper's figure shows a 100k-body uniform-random run with a massive
central body (left), and in situ data binning of the sum of mass onto
256x256 grids in the x-y plane (middle) and x-z plane (right).

The bench runs the same pipeline at reduced body count (all-pairs
gravity is O(n^2) in real time on the laptop substrate), regenerates
both binning grids through the full SENSEI path, and reports the grid
statistics that make the figure checkable in text form: total binned
mass equals total system mass, the count histogram covers every body,
and the central mass dominates its bin.
"""

from __future__ import annotations

import numpy as np

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.bridge import Bridge

N_BODIES = 4000
STEPS = 3
GRID = 256
CENTRAL_MASS = 100.0


def _run_pipeline():
    solver = NewtonSolver(
        SolverConfig(
            n_bodies=N_BODIES,
            dt=1e-4,
            softening=0.05,
            seed=42,
            central_mass=CENTRAL_MASS,
            mass_range=(0.01, 0.03),
        )
    )
    xy = BinningAnalysis(
        "bodies",
        [AxisSpec("x", GRID), AxisSpec("y", GRID)],
        [BinRequest(ReductionOp.SUM, "mass")],
        name="fig1-xy",
    )
    xz = BinningAnalysis(
        "bodies",
        [AxisSpec("x", GRID), AxisSpec("z", GRID)],
        [BinRequest(ReductionOp.SUM, "mass")],
        name="fig1-xz",
    )
    for a in (xy, xz):
        a.set_device_id(-1)
    bridge = Bridge()
    bridge.initialize(analyses=[xy, xz])
    adaptor = NewtonDataAdaptor(solver)
    solver.run(STEPS, bridge=bridge, adaptor=adaptor)
    bridge.finalize()
    return solver, xy.latest, xz.latest


def test_fig1_nbody_binning(benchmark):
    solver, mesh_xy, mesh_xz = benchmark.pedantic(
        _run_pipeline, rounds=1, iterations=1
    )

    total_mass = solver.comm.allreduce(float(solver.bodies.mass.sum()))
    for name, mesh in (("x-y", mesh_xy), ("x-z", mesh_xz)):
        count = mesh.cell_array_as_grid("count")
        mass_sum = mesh.cell_array_as_grid("mass_sum")
        assert count.shape == (GRID, GRID)
        # Every body lands in exactly one bin; binned mass == system mass.
        assert count.sum() == N_BODIES
        assert mass_sum.sum() == np.float64(total_mass)
        # The massive central body dominates the densest-mass bin.
        assert mass_sum.max() >= CENTRAL_MASS
        occupied = int((count > 0).sum())
        print(
            f"\nFigure 1 ({name}): grid {GRID}x{GRID}, "
            f"occupied bins {occupied}, total binned mass "
            f"{mass_sum.sum():.4f} (system {total_mass:.4f}), "
            f"max-bin mass {mass_sum.max():.2f}"
        )
        assert occupied > 100  # the distribution spreads across the grid
