"""Transport-plane smoke benchmark: compression x channel quality.

Four in transit runs over a 2x2 matrix — codec in {none, zlib} x
channel in {clean, lossy} — measuring what the transport plane is for:

- on a *slow* interconnect (1 GB/s here, vs the default 25 GB/s
  Slingshot model) zlib compression reduces the producers' simulated
  transfer time, because the wire charges compressed bytes while the
  codec's CPU cost is smaller than the bytes it saves;
- a clean run shows zero retries/backoff, a lossy run (20% drop, 5%
  duplicate) recovers everything via retries visible in the metrics;
- the transport timelines and per-endpoint counters land in the
  Chrome-trace export.
"""

from __future__ import annotations

import numpy as np

from repro.hw.trace import chrome_trace
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.svtk.table import TableData
from repro.transport import (
    TransportConfig,
    reset_transport_timelines,
    transport_timelines,
)
from repro.transport.retry import RetryPolicy
from repro.units import gbs, us

M, N = 4, 2
N_ROWS = 20_000
STEPS = 2

#: A deliberately slow fabric so compression can win: at Slingshot
#: rates the zlib CPU charge exceeds the transfer-time saving.
SLOW_FABRIC = CommCostModel(latency=us(5.0), bandwidth=gbs(1.0))


class NullAnalysis(AnalysisAdaptor):
    def __init__(self):
        super().__init__("null")
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return data.get_mesh("bodies").n_rows

    def process(self, payload, comm, device_id):
        pass


def producer_main(sim_comm, bridge):
    rng = np.random.default_rng(bridge._world.rank)
    # Quantized values compress well while still being "real" data.
    x = np.round(rng.standard_normal(N_ROWS), 2)
    for step in range(STEPS):
        t = TableData("bodies")
        t.add_host_column("x", x)
        t.add_host_column("mass", np.full(N_ROWS, 0.01))
        da = TableDataAdaptor({"bodies": t})
        da.set_step(step, step * 1e-3)
        bridge.execute(da)
    return bridge.total_apparent_time


def run_matrix():
    """The 2x2 sweep; returns {(codec, channel): result dict}."""
    results = {}
    retry = RetryPolicy(max_retries=40, ack_timeout=0.02)
    for codec in ("none", "zlib"):
        for channel in ("clean", "lossy"):
            cfg = TransportConfig(compression=codec, retry=retry)
            if channel == "lossy":
                cfg = cfg.with_faults(drop=0.2, duplicate=0.05, seed=7)
            layout = InTransitLayout(m=M, n=N)
            ship_times, endpoints = run_in_transit(
                layout, producer_main, lambda: [NullAnalysis()],
                transport=cfg, cost=SLOW_FABRIC,
            )
            metrics = [
                rm for r in endpoints for rm in r.receiver_metrics.values()
            ]
            results[(codec, channel)] = {
                "ship_time": sum(ship_times),
                "steps": sum(r.steps_processed for r in endpoints),
                "retries_recovered": sum(m.drops_recovered for m in metrics),
                "duplicates_dropped": sum(m.duplicates_dropped for m in metrics),
                "wire_bytes": sum(m.wire_bytes for m in metrics),
                "compression_ratio": max(m.compression_ratio for m in metrics),
            }
    return results


def test_transport_matrix(benchmark):
    reset_transport_timelines()
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    for key, r in results.items():
        assert r["steps"] == STEPS * N, key

    clean_none = results[("none", "clean")]
    clean_zlib = results[("zlib", "clean")]
    lossy_none = results[("none", "lossy")]

    # Compression trades CPU for transfer time and wins on a slow link.
    assert clean_zlib["wire_bytes"] < clean_none["wire_bytes"]
    assert clean_zlib["compression_ratio"] > 1.0
    assert clean_zlib["ship_time"] < clean_none["ship_time"]

    # Clean channels never retry; lossy channels visibly recover.
    assert clean_none["retries_recovered"] == 0
    assert lossy_none["duplicates_dropped"] > 0

    # Transport activity reaches the Chrome-trace export.
    counters = []
    # (metrics counters were aggregated above; re-emit a sample)
    from repro.transport.metrics import TransportMetrics

    sample = TransportMetrics(role="bench", peer="matrix")
    sample.retries = lossy_none["retries_recovered"]
    counters.extend(sample.chrome_counter_events())
    events = chrome_trace(transport_timelines(), extra_events=counters)
    assert any(e.get("ph") == "C" for e in events)
    assert any(
        e.get("ph") == "X" and str(e.get("name", "")).startswith(("encode", "send"))
        for e in events
    )

    benchmark.extra_info["ship_time_none"] = clean_none["ship_time"]
    benchmark.extra_info["ship_time_zlib"] = clean_zlib["ship_time"]
    benchmark.extra_info["compression_ratio"] = clean_zlib["compression_ratio"]
    reset_transport_timelines()
