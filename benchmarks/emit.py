"""Shared ``--json`` result emitter for the benchmark harness.

Benchmarks that opt in grow a ``--json PATH`` flag and write a small
machine-readable result file (``BENCH_<name>.json``) next to their
human-readable table, so the perf trajectory is diffable across
commits instead of living only in CI logs.  The payload is stable:

    {"schema": 1, "bench": <name>,
     "metrics": {...headline numbers...},
     "detail": {...everything else worth keeping...}}

Keys are sorted and no wall-clock timestamp is recorded — two runs of
the same seeded benchmark produce byte-identical files.
"""

from __future__ import annotations

import json
import math

#: Bump when the payload layout changes shape (not when metrics are
#: added — consumers must tolerate new keys).
SCHEMA = 1


def add_json_arg(parser, default=None):
    """Attach the shared ``--json PATH`` option to an argparse parser."""
    parser.add_argument(
        "--json", metavar="PATH", default=default,
        help="write benchmark metrics to PATH as JSON "
             + (f"(default: {default})" if default else "(off by default)"),
    )
    return parser


def percentile(values, q: float) -> float:
    """Nearest-rank percentile ``q`` (0..100) of a non-empty sequence."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def write_bench_json(path: str, name: str, metrics: dict,
                     detail: dict | None = None) -> dict:
    """Write the standard benchmark payload to ``path``; returns it."""
    payload = {
        "schema": SCHEMA,
        "bench": str(name),
        "metrics": dict(metrics),
        "detail": dict(detail or {}),
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return payload
