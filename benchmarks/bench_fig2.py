"""Figure 2 — total run time, lockstep vs asynchronous, per placement.

Replays the eight Table 1 cases at paper scale (24M bodies, 128 nodes,
512 GPUs, 90 binning operations per iteration) on the calibrated cost
model, then prints the bar series and asserts the paper's orderings:

- asynchronous execution reduces total run time in every placement;
- host and same-device placements are nearly tied;
- the dedicated-device placements (fewer ranks, reduced concurrency)
  are slower overall.
"""

from __future__ import annotations

from repro.harness.report import format_fig2, verify_findings
from repro.harness.runner import simulate
from repro.harness.spec import InSituPlacement, table1_matrix
from repro.sensei.execution import ExecutionMethod


def _simulate_all():
    return [simulate(spec) for spec in table1_matrix()]


def test_fig2_total_run_time(benchmark):
    results = benchmark(_simulate_all)

    print()
    print(format_fig2(results))

    findings = verify_findings(results)
    assert findings["async_reduces_total_time_in_all_placements"], findings
    assert findings["dedicated_placements_are_slower"], findings
    assert findings["host_and_same_device_nearly_tied"], findings

    by = {(r.spec.placement, r.spec.method): r for r in results}
    L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS
    # Concrete factors, for EXPERIMENTS.md:
    for p in InSituPlacement:
        saving = 1.0 - by[(p, A)].total_time / by[(p, L)].total_time
        print(f"async saving at {p.value!r}: {100 * saving:.1f}%")
        assert saving > 0.0
