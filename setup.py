"""Setup shim for environments without PEP-517 editable support.

``pip install -e .`` needs the ``wheel`` package to build modern
editables; offline environments without it can use
``python setup.py develop --user`` or simply add ``src/`` to a .pth.
"""
from setuptools import setup

setup()
